#include "memx/stackdist/all_assoc.hpp"

#include <algorithm>
#include <limits>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {
namespace {

/// Flat-slot offset of set-count level `s`: levels 0..s-1 occupy
/// (2^0 + 2^1 + ... + 2^(s-1)) * maxAssoc = (2^s - 1) * maxAssoc slots.
[[nodiscard]] constexpr std::size_t levelOffset(unsigned s,
                                                std::uint32_t maxAssoc) {
  return (((std::size_t{1} << s) - 1)) * maxAssoc;
}

/// Move-to-front touch of one bounded recency list: push the key in at
/// depth 0 and ripple the displaced entries down until we either find
/// the key's old position (its per-set stack distance), hit the empty
/// tail (cold), or fall off the end (distance >= maxAssoc; the LRU
/// entry drops, which is exact — no associativity <= maxAssoc can see
/// it before its next fill anyway, and its refill resets the dirty
/// threshold below, so dropping loses no writeback either). Cold and
/// dropped both return maxAssoc: "misses at every tracked way count".
///
/// `dirty` parallels `slot`: dirty[d] is the smallest associativity at
/// which slot[d]'s line is dirty (maxAssoc + 1 = clean everywhere; by
/// inclusion dirtiness is monotone in associativity, so one threshold
/// captures every tracked cache). An entry displaced from depth d to
/// d + 1 leaves exactly the (d+1)-way cache; when it is dirty there
/// (threshold <= d + 1) that cache writes it back, counted into
/// dirtyEvict[d + 1]. The touched key's own threshold becomes 1 on a
/// write (hits dirty it, write-allocate fills insert it dirty) and
/// max(old, distance + 1) on a read (caches that missed refill clean).
///
/// Packed-entry layout (the default pass): the dirty threshold rides in
/// the top byte of the key slot itself, so the ripple scan touches one
/// array instead of two. Usable whenever the threshold fits a byte
/// (maxAssoc <= 254) and key = line + 1 fits the low 56 bits.
constexpr unsigned kDirtyShift = 56;
constexpr std::uint64_t kKeyMask = (std::uint64_t{1} << kDirtyShift) - 1;
/// Largest packable line index: key = line + 1 must stay below 2^56.
constexpr std::uint64_t kMaxPackedLine = kKeyMask - 1;

/// touchSet with the packed layout; same contract as the split-array
/// overload below, minus the separate dirty row.
[[nodiscard]] inline std::uint32_t touchSetPacked(std::uint64_t* slot,
                                                  std::uint64_t key,
                                                  bool isWrite,
                                                  std::uint32_t maxAssoc,
                                                  std::uint64_t* dirtyEvict) {
  const std::uint64_t head = slot[0];
  if ((head & kKeyMask) == key) {  // MRU re-touch: order already correct
    if (isWrite) slot[0] = key | (std::uint64_t{1} << kDirtyShift);
    return 0;
  }
  const std::uint32_t clean = maxAssoc + 1;
  std::uint64_t carry = key;  // threshold patched into slot[0] below
  std::uint32_t dist = maxAssoc;
  std::uint32_t oldDirty = clean;  // cold/dropped keys refill afresh
  for (std::uint32_t d = 0; d < maxAssoc; ++d) {
    const std::uint64_t cur = slot[d];
    const std::uint64_t curKey = cur & kKeyMask;
    slot[d] = carry;
    if (curKey == key) {
      dist = d;
      oldDirty = static_cast<std::uint32_t>(cur >> kDirtyShift);
      break;
    }
    if (curKey == 0) break;
    // Branchless tally: adding the comparison bit beats a mostly-not-
    // taken branch that turns unpredictable under write-heavy traces.
    dirtyEvict[d + 1] += (cur >> kDirtyShift) <= d + 1;
    carry = cur;
  }
  const std::uint64_t thresh = isWrite ? 1u : std::max(oldDirty, dist + 1);
  slot[0] = key | (thresh << kDirtyShift);
  return dist;
}

/// DirtyT is the threshold element type — uint8_t whenever
/// maxAssoc + 1 fits (see AllAssocProfile::buildProfile), so the whole
/// per-set dirty row rides along in one cache line.
template <typename DirtyT>
[[nodiscard]] inline std::uint32_t touchSet(std::uint64_t* slot,
                                            DirtyT* dirty, std::uint64_t key,
                                            bool isWrite,
                                            std::uint32_t maxAssoc,
                                            std::uint64_t* dirtyEvict) {
  if (slot[0] == key) {  // MRU re-touch: order already correct
    if (isWrite) dirty[0] = 1;
    return 0;
  }
  const std::uint32_t clean = maxAssoc + 1;
  std::uint64_t carry = key;
  DirtyT carryDirty = static_cast<DirtyT>(clean);  // patched below
  std::uint32_t dist = maxAssoc;
  std::uint32_t oldDirty = clean;  // cold/dropped keys refill afresh
  for (std::uint32_t d = 0; d < maxAssoc; ++d) {
    const std::uint64_t cur = slot[d];
    const DirtyT curDirty = dirty[d];
    slot[d] = carry;
    dirty[d] = carryDirty;
    if (cur == key) {
      dist = d;
      oldDirty = curDirty;
      break;
    }
    if (cur == 0) break;
    // Branchless tally: adding the comparison bit beats a mostly-not-
    // taken branch that turns unpredictable under write-heavy traces.
    dirtyEvict[d + 1] += curDirty <= d + 1;
    carry = cur;
    carryDirty = curDirty;
  }
  dirty[0] = static_cast<DirtyT>(
      isWrite ? 1u : std::max(oldDirty, dist + 1));
  return dist;
}

}  // namespace

AllAssocProfile::AllAssocProfile(std::uint32_t lineBytes,
                                 std::uint32_t maxSets,
                                 std::uint32_t maxAssoc)
    : lineBytes_(lineBytes), maxAssoc_(maxAssoc) {
  MEMX_EXPECTS(isPow2(lineBytes), "lineBytes must be a power of two");
  MEMX_EXPECTS(isPow2(maxSets), "maxSets must be a power of two");
  MEMX_EXPECTS(maxAssoc >= 1, "maxAssoc must be at least 1");
  // The per-level slot arrays total (2*maxSets - 1) * maxAssoc entries;
  // keep that well under memory limits (this bound still covers every
  // geometry pow2Range can produce by orders of magnitude).
  const auto totalSlots =
      (2 * static_cast<std::uint64_t>(maxSets) - 1) * maxAssoc;
  MEMX_EXPECTS(totalSlots <= (std::uint64_t{1} << 28),
               "maxSets * maxAssoc grid too large");

  lineShift_ = log2Exact(lineBytes);
  numS_ = log2Exact(maxSets) + 1;

  const std::size_t buckets = bucketCount();
  refHistRead_.assign(numS_ * buckets, 0);
  refHistWrite_.assign(numS_ * buckets, 0);
  lineHist_.assign(numS_ * buckets, 0);
  dirtyEvictHist_.assign(numS_ * buckets, 0);
  worst_.assign(numS_, 0);

  // Recency lists for every (level, set): slot d holds the (d+1)-th
  // most recently touched line of that set, encoded as line+1 so 0 is
  // "empty". Fast path: thresholds fit a byte for every geometry with
  // maxAssoc <= 254 and line indices fit 56 bits for every address
  // below 2^(56 + lineShift), so the packed single-array pass serves
  // essentially all real traces; feed() migrates to the split arrays
  // the moment a reference breaks the address bound. Geometries whose
  // thresholds don't fit a byte start split with 32-bit thresholds.
  slots_.assign(static_cast<std::size_t>(totalSlots), 0);
  const bool fitsByte =
      maxAssoc_ + 1 <= std::numeric_limits<std::uint8_t>::max();
  if (fitsByte) {
    mode_ = Mode::Packed;
  } else {
    mode_ = Mode::Split32;
    dirty32_.assign(static_cast<std::size_t>(totalSlots), maxAssoc_ + 1);
  }
}

AllAssocProfile::AllAssocProfile(const Trace& trace, std::uint32_t lineBytes,
                                 std::uint32_t maxSets,
                                 std::uint32_t maxAssoc)
    : AllAssocProfile(lineBytes, maxSets, maxAssoc) {
  feed(trace);
}

void AllAssocProfile::feed(const MemRef* refs, std::size_t count) {
  if (count == 0) return;
  if (mode_ == Mode::Packed) {
    const std::size_t consumed = feedPacked(refs, count);
    if (consumed == count) return;
    migrateFromPacked();
    refs += consumed;
    count -= consumed;
  }
  if (mode_ == Mode::Split8) {
    feedSplit<std::uint8_t>(refs, count);
  } else {
    feedSplit<std::uint32_t>(refs, count);
  }
}

void AllAssocProfile::migrateFromPacked() {
  // Unpack threshold-in-top-byte entries into the parallel byte array.
  // Empty slots (0) stay key 0; their threshold is never read by the
  // ripple scan but gets the "clean everywhere" value anyway.
  dirty8_.assign(slots_.size(), static_cast<std::uint8_t>(maxAssoc_ + 1));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint64_t packed = slots_[i];
    if (packed == 0) continue;
    dirty8_[i] = static_cast<std::uint8_t>(packed >> kDirtyShift);
    slots_[i] = packed & kKeyMask;
  }
  mode_ = Mode::Split8;
}

std::size_t AllAssocProfile::feedPacked(const MemRef* refs,
                                        std::size_t count) {
  const std::size_t buckets = bucketCount();

  // Hoisted per-level slot bases and set masks: the ripple scan runs
  // once per (probe, level), so index arithmetic shaved here is the
  // profile's dominant cost after the scan itself. Rebuilt per feed
  // call — pointers into slots_ must not outlive a call (migration
  // reuses the storage).
  std::vector<std::uint64_t*> base(numS_);
  std::vector<std::uint64_t> mask(numS_);
  for (unsigned s = 0; s < numS_; ++s) {
    base[s] = slots_.data() + levelOffset(s, maxAssoc_);
    mask[s] = (std::uint64_t{1} << s) - 1;
  }

  // Per-reference worst (deepest) bucket at each level, so a reference
  // that straddles lines is counted as a miss iff any probe misses —
  // the same per-access accounting CacheSim uses.
  std::vector<std::uint32_t>& worst = worst_;

  for (std::size_t i = 0; i < count; ++i) {
    const MemRef& ref = refs[i];
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");

    const std::uint64_t firstLine = ref.addr >> lineShift_;
    const std::uint64_t lastLine = (ref.addr + ref.size - 1) >> lineShift_;
    if (firstLine > kMaxPackedLine || lastLine > kMaxPackedLine) {
      return i;  // beyond the packable range (or wrapped): migrate
    }

    const bool readLike = isReadLike(ref.type);
    if (readLike) {
      ++reads_;
    } else {
      ++writes_;
    }
    auto& refHist = readLike ? refHistRead_ : refHistWrite_;

    if (firstLine == lastLine) {
      // Fast path — an access contained in one line (the overwhelmingly
      // common case): the reference's worst bucket at each level is the
      // single probe's bucket, so both histograms update in one sweep
      // and the per-reference `worst` merge is skipped entirely.
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = firstLine + 1;
      std::size_t row = 0;
      unsigned s = 0;
      for (; s < numS_; ++s, row += buckets) {
        const std::size_t off = (firstLine & mask[s]) * maxAssoc_;
        const std::uint32_t bucket =
            touchSetPacked(base[s] + off, key, !readLike, maxAssoc_,
                           dirtyEvictHist_.data() + row);
        ++lineHist_[row + bucket];
        ++refHist[row + bucket];
        if (bucket == 0) {
          ++s;
          row += buckets;
          break;
        }
      }
      // Per-set stack distance is non-increasing in the set count (the
      // finer set is a subset of the coarser conflict set), so once a
      // level reports MRU every remaining level is an MRU re-touch too:
      // no displacement, no eviction, only the bucket-0 tallies — and
      // on a write, the threshold drop to 1 that touchSetPacked's MRU
      // path would have applied.
      if (readLike) {
        for (; s < numS_; ++s, row += buckets) {
          ++lineHist_[row];
          ++refHist[row];
        }
      } else {
        const std::uint64_t dirtyHead =
            key | (std::uint64_t{1} << kDirtyShift);
        for (; s < numS_; ++s, row += buckets) {
          base[s][(firstLine & mask[s]) * maxAssoc_] = dirtyHead;
          ++lineHist_[row];
          ++refHist[row];
        }
      }
      continue;
    }

    worst.assign(numS_, 0);
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = line + 1;
      std::size_t row = 0;
      unsigned s = 0;
      for (; s < numS_; ++s, row += buckets) {
        const std::size_t off = (line & mask[s]) * maxAssoc_;
        const std::uint32_t bucket =
            touchSetPacked(base[s] + off, key, !readLike, maxAssoc_,
                           dirtyEvictHist_.data() + row);
        ++lineHist_[row + bucket];
        if (bucket > worst[s]) worst[s] = bucket;
        if (bucket == 0) {
          ++s;
          row += buckets;
          break;
        }
      }
      // Same MRU cascade as the single-line path (bucket 0 never
      // raises `worst`, so only the tallies and the write-path
      // threshold drop remain).
      if (readLike) {
        for (; s < numS_; ++s, row += buckets) ++lineHist_[row];
      } else {
        const std::uint64_t dirtyHead =
            key | (std::uint64_t{1} << kDirtyShift);
        for (; s < numS_; ++s, row += buckets) {
          base[s][(line & mask[s]) * maxAssoc_] = dirtyHead;
          ++lineHist_[row];
        }
      }
    }

    std::size_t row = 0;
    for (unsigned s = 0; s < numS_; ++s, row += buckets) {
      ++refHist[row + worst[s]];
    }
  }
  return count;
}

namespace {

template <typename DirtyT>
[[nodiscard]] DirtyT* dirtyArray(std::vector<std::uint8_t>& dirty8,
                                 std::vector<std::uint32_t>& dirty32);
template <>
std::uint8_t* dirtyArray<std::uint8_t>(std::vector<std::uint8_t>& dirty8,
                                       std::vector<std::uint32_t>&) {
  return dirty8.data();
}
template <>
std::uint32_t* dirtyArray<std::uint32_t>(std::vector<std::uint8_t>&,
                                         std::vector<std::uint32_t>& dirty32) {
  return dirty32.data();
}

}  // namespace

template <typename DirtyT>
void AllAssocProfile::feedSplit(const MemRef* refs, std::size_t count) {
  // `dirtyFrom` parallels slots_ with each entry's dirty threshold (the
  // smallest associativity at which the line is dirty; maxAssoc + 1 =
  // clean everywhere).
  DirtyT* const dirtyFrom = dirtyArray<DirtyT>(dirty8_, dirty32_);

  const std::size_t buckets = bucketCount();

  // Hoisted per-level slot bases and set masks: the ripple scan runs
  // once per (probe, level), so index arithmetic shaved here is the
  // profile's dominant cost after the scan itself.
  std::vector<std::uint64_t*> base(numS_);
  std::vector<DirtyT*> dirtyBase(numS_);
  std::vector<std::uint64_t> mask(numS_);
  for (unsigned s = 0; s < numS_; ++s) {
    base[s] = slots_.data() + levelOffset(s, maxAssoc_);
    dirtyBase[s] = dirtyFrom + levelOffset(s, maxAssoc_);
    mask[s] = (std::uint64_t{1} << s) - 1;
  }

  // Per-reference worst (deepest) bucket at each level, so a reference
  // that straddles lines is counted as a miss iff any probe misses —
  // the same per-access accounting CacheSim uses.
  std::vector<std::uint32_t>& worst = worst_;

  for (std::size_t i = 0; i < count; ++i) {
    const MemRef& ref = refs[i];
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");
    const bool readLike = isReadLike(ref.type);
    if (readLike) {
      ++reads_;
    } else {
      ++writes_;
    }
    auto& refHist = readLike ? refHistRead_ : refHistWrite_;

    const std::uint64_t firstLine = ref.addr >> lineShift_;
    const std::uint64_t lastLine = (ref.addr + ref.size - 1) >> lineShift_;

    if (firstLine == lastLine) {
      // Fast path — an access contained in one line (the overwhelmingly
      // common case): the reference's worst bucket at each level is the
      // single probe's bucket, so both histograms update in one sweep
      // and the per-reference `worst` merge is skipped entirely.
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = firstLine + 1;
      std::size_t row = 0;
      for (unsigned s = 0; s < numS_; ++s, row += buckets) {
        const std::size_t off = (firstLine & mask[s]) * maxAssoc_;
        const std::uint32_t bucket =
            touchSet(base[s] + off, dirtyBase[s] + off, key, !readLike,
                     maxAssoc_, dirtyEvictHist_.data() + row);
        ++lineHist_[row + bucket];
        ++refHist[row + bucket];
      }
      continue;
    }

    worst.assign(numS_, 0);
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = line + 1;
      std::size_t row = 0;
      for (unsigned s = 0; s < numS_; ++s, row += buckets) {
        const std::size_t off = (line & mask[s]) * maxAssoc_;
        const std::uint32_t bucket =
            touchSet(base[s] + off, dirtyBase[s] + off, key, !readLike,
                     maxAssoc_, dirtyEvictHist_.data() + row);
        ++lineHist_[row + bucket];
        if (bucket > worst[s]) worst[s] = bucket;
      }
      if (line == std::numeric_limits<std::uint64_t>::max()) break;
    }

    std::size_t row = 0;
    for (unsigned s = 0; s < numS_; ++s, row += buckets) {
      ++refHist[row + worst[s]];
    }
  }
}

unsigned AllAssocProfile::levelOf(std::uint32_t numSets) const {
  MEMX_EXPECTS(isPow2(numSets), "numSets must be a power of two");
  const unsigned s = log2Exact(numSets);
  MEMX_EXPECTS(s < numS_, "numSets exceeds the profiled maxSets");
  return s;
}

std::uint64_t AllAssocProfile::tailSum(const std::vector<std::uint64_t>& hist,
                                       unsigned level,
                                       std::uint32_t assoc) const {
  MEMX_EXPECTS(assoc >= 1 && assoc <= maxAssoc_,
               "associativity outside the profiled range");
  std::uint64_t sum = 0;
  for (std::size_t b = assoc; b <= maxAssoc_; ++b) {
    sum += hist[level * bucketCount() + b];
  }
  return sum;
}

std::uint64_t AllAssocProfile::misses(std::uint32_t numSets,
                                      std::uint32_t assoc) const {
  return readMisses(numSets, assoc) + writeMisses(numSets, assoc);
}

std::uint64_t AllAssocProfile::readMisses(std::uint32_t numSets,
                                          std::uint32_t assoc) const {
  return tailSum(refHistRead_, levelOf(numSets), assoc);
}

std::uint64_t AllAssocProfile::writeMisses(std::uint32_t numSets,
                                           std::uint32_t assoc) const {
  return tailSum(refHistWrite_, levelOf(numSets), assoc);
}

std::uint64_t AllAssocProfile::lineFills(std::uint32_t numSets,
                                         std::uint32_t assoc) const {
  return tailSum(lineHist_, levelOf(numSets), assoc);
}

std::uint64_t AllAssocProfile::writebacks(std::uint32_t numSets,
                                          std::uint32_t assoc) const {
  const unsigned level = levelOf(numSets);
  MEMX_EXPECTS(assoc >= 1 && assoc <= maxAssoc_,
               "associativity outside the profiled range");
  // A direct per-assoc count (not a tail sum): each dirty eviction was
  // recorded against exactly the one associativity that lost the line.
  return dirtyEvictHist_[level * bucketCount() + assoc];
}

CacheStats AllAssocProfile::stats(std::uint32_t numSets, std::uint32_t assoc,
                                  WritePolicy writePolicy) const {
  CacheStats out;
  out.reads = reads_;
  out.writes = writes_;
  out.readMisses = readMisses(numSets, assoc);
  out.readHits = reads_ - out.readMisses;
  out.writeMisses = writeMisses(numSets, assoc);
  out.writeHits = writes_ - out.writeMisses;
  out.lineFills = lineFills(numSets, assoc);
  // Write-through lines never dirty, so only write-back evicts dirty
  // lines; conversely only write-through stores words through to
  // memory. Both match CacheSim field for field.
  out.writebacks = writePolicy == WritePolicy::WriteBack
                       ? writebacks(numSets, assoc)
                       : 0;
  out.memWrites =
      writePolicy == WritePolicy::WriteThrough ? writeProbes_ : 0;
  return out;
}

}  // namespace memx
