#include "memx/stackdist/all_assoc.hpp"

#include <limits>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {
namespace {

/// Flat-slot offset of set-count level `s`: levels 0..s-1 occupy
/// (2^0 + 2^1 + ... + 2^(s-1)) * maxAssoc = (2^s - 1) * maxAssoc slots.
[[nodiscard]] constexpr std::size_t levelOffset(unsigned s,
                                                std::uint32_t maxAssoc) {
  return (((std::size_t{1} << s) - 1)) * maxAssoc;
}

/// Move-to-front touch of one bounded recency list: push the key in at
/// depth 0 and ripple the displaced entries down until we either find
/// the key's old position (its per-set stack distance), hit the empty
/// tail (cold), or fall off the end (distance >= maxAssoc; the LRU
/// entry drops, which is exact — no associativity <= maxAssoc can see
/// it before its next fill anyway). Cold and dropped both return
/// maxAssoc: "misses at every tracked way count".
[[nodiscard]] inline std::uint32_t touchSet(std::uint64_t* slot,
                                            std::uint64_t key,
                                            std::uint32_t maxAssoc) {
  if (slot[0] == key) return 0;  // MRU re-touch: order already correct
  std::uint64_t carry = key;
  for (std::uint32_t d = 0; d < maxAssoc; ++d) {
    const std::uint64_t cur = slot[d];
    slot[d] = carry;
    if (cur == key) return d;
    if (cur == 0) break;
    carry = cur;
  }
  return maxAssoc;
}

}  // namespace

AllAssocProfile::AllAssocProfile(const Trace& trace, std::uint32_t lineBytes,
                                 std::uint32_t maxSets,
                                 std::uint32_t maxAssoc)
    : lineBytes_(lineBytes), maxAssoc_(maxAssoc) {
  MEMX_EXPECTS(isPow2(lineBytes), "lineBytes must be a power of two");
  MEMX_EXPECTS(isPow2(maxSets), "maxSets must be a power of two");
  MEMX_EXPECTS(maxAssoc >= 1, "maxAssoc must be at least 1");
  // The per-level slot arrays total (2*maxSets - 1) * maxAssoc entries;
  // keep that well under memory limits (this bound still covers every
  // geometry pow2Range can produce by orders of magnitude).
  const auto totalSlots =
      (2 * static_cast<std::uint64_t>(maxSets) - 1) * maxAssoc;
  MEMX_EXPECTS(totalSlots <= (std::uint64_t{1} << 28),
               "maxSets * maxAssoc grid too large");

  lineShift_ = log2Exact(lineBytes);
  numS_ = log2Exact(maxSets) + 1;

  // Recency lists for every (level, set): slot d holds the (d+1)-th most
  // recently touched line of that set, encoded as line+1 so 0 is "empty".
  std::vector<std::uint64_t> slots(static_cast<std::size_t>(totalSlots), 0);

  const std::size_t buckets = bucketCount();
  refHistRead_.assign(numS_ * buckets, 0);
  refHistWrite_.assign(numS_ * buckets, 0);
  lineHist_.assign(numS_ * buckets, 0);

  // Hoisted per-level slot bases and set masks: the ripple scan runs
  // once per (probe, level), so index arithmetic shaved here is the
  // profile's dominant cost after the scan itself.
  std::vector<std::uint64_t*> base(numS_);
  std::vector<std::uint64_t> mask(numS_);
  for (unsigned s = 0; s < numS_; ++s) {
    base[s] = slots.data() + levelOffset(s, maxAssoc_);
    mask[s] = (std::uint64_t{1} << s) - 1;
  }

  // Per-reference worst (deepest) bucket at each level, so a reference
  // that straddles lines is counted as a miss iff any probe misses —
  // the same per-access accounting CacheSim uses.
  std::vector<std::uint32_t> worst(numS_, 0);

  for (const MemRef& ref : trace) {
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");
    const bool readLike = isReadLike(ref.type);
    if (readLike) {
      ++reads_;
    } else {
      ++writes_;
    }
    auto& refHist = readLike ? refHistRead_ : refHistWrite_;

    const std::uint64_t firstLine = ref.addr >> lineShift_;
    const std::uint64_t lastLine = (ref.addr + ref.size - 1) >> lineShift_;

    if (firstLine == lastLine) {
      // Fast path — an access contained in one line (the overwhelmingly
      // common case): the reference's worst bucket at each level is the
      // single probe's bucket, so both histograms update in one sweep
      // and the per-reference `worst` merge is skipped entirely.
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = firstLine + 1;
      std::size_t row = 0;
      for (unsigned s = 0; s < numS_; ++s, row += buckets) {
        std::uint64_t* slot = base[s] + (firstLine & mask[s]) * maxAssoc_;
        const std::uint32_t bucket = touchSet(slot, key, maxAssoc_);
        ++lineHist_[row + bucket];
        ++refHist[row + bucket];
      }
      continue;
    }

    worst.assign(numS_, 0);
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = line + 1;
      std::size_t row = 0;
      for (unsigned s = 0; s < numS_; ++s, row += buckets) {
        std::uint64_t* slot = base[s] + (line & mask[s]) * maxAssoc_;
        const std::uint32_t bucket = touchSet(slot, key, maxAssoc_);
        ++lineHist_[row + bucket];
        if (bucket > worst[s]) worst[s] = bucket;
      }
      if (line == std::numeric_limits<std::uint64_t>::max()) break;
    }

    std::size_t row = 0;
    for (unsigned s = 0; s < numS_; ++s, row += buckets) {
      ++refHist[row + worst[s]];
    }
  }
}

unsigned AllAssocProfile::levelOf(std::uint32_t numSets) const {
  MEMX_EXPECTS(isPow2(numSets), "numSets must be a power of two");
  const unsigned s = log2Exact(numSets);
  MEMX_EXPECTS(s < numS_, "numSets exceeds the profiled maxSets");
  return s;
}

std::uint64_t AllAssocProfile::tailSum(const std::vector<std::uint64_t>& hist,
                                       unsigned level,
                                       std::uint32_t assoc) const {
  MEMX_EXPECTS(assoc >= 1 && assoc <= maxAssoc_,
               "associativity outside the profiled range");
  std::uint64_t sum = 0;
  for (std::size_t b = assoc; b <= maxAssoc_; ++b) {
    sum += hist[level * bucketCount() + b];
  }
  return sum;
}

std::uint64_t AllAssocProfile::misses(std::uint32_t numSets,
                                      std::uint32_t assoc) const {
  return readMisses(numSets, assoc) + writeMisses(numSets, assoc);
}

std::uint64_t AllAssocProfile::readMisses(std::uint32_t numSets,
                                          std::uint32_t assoc) const {
  return tailSum(refHistRead_, levelOf(numSets), assoc);
}

std::uint64_t AllAssocProfile::writeMisses(std::uint32_t numSets,
                                           std::uint32_t assoc) const {
  return tailSum(refHistWrite_, levelOf(numSets), assoc);
}

std::uint64_t AllAssocProfile::lineFills(std::uint32_t numSets,
                                         std::uint32_t assoc) const {
  return tailSum(lineHist_, levelOf(numSets), assoc);
}

CacheStats AllAssocProfile::stats(std::uint32_t numSets, std::uint32_t assoc,
                                  WritePolicy writePolicy) const {
  CacheStats out;
  out.reads = reads_;
  out.writes = writes_;
  out.readMisses = readMisses(numSets, assoc);
  out.readHits = reads_ - out.readMisses;
  out.writeMisses = writeMisses(numSets, assoc);
  out.writeHits = writes_ - out.writeMisses;
  out.lineFills = lineFills(numSets, assoc);
  out.writebacks = 0;
  out.memWrites =
      writePolicy == WritePolicy::WriteThrough ? writeProbes_ : 0;
  return out;
}

}  // namespace memx
