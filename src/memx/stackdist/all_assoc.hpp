// All-associativity stack-distance analysis (Hill & Smith 1989).
//
// Mattson's observation gives every fully-associative LRU capacity from
// one trace pass; Hill and Smith generalized it to set-associative
// caches: under bit-selection indexing, an access hits in a cache with
// 2^s sets and A ways iff fewer than A distinct lines of the same set
// were touched since its previous touch. Conflict sets are nested in s
// (two lines that conflict at 2^s sets also conflict at every coarser
// set count), so one pass can maintain the per-set recency order for
// *every* power-of-two set count at once and read off exact LRU miss
// counts for the whole (sets, associativity) grid.
//
// Instead of Hill-Smith's single global stack walk (O(stack depth) per
// access), this implementation keeps, per set count, a bounded
// per-set recency list truncated to `maxAssoc` entries — the top of the
// true per-set LRU stack, which is all that associativities up to
// maxAssoc can distinguish. Distances at or beyond maxAssoc and cold
// (first-touch) lines fold into one "miss at every tracked
// associativity" bucket, making the per-probe cost a hard
// O(setCounts * maxAssoc) regardless of trace locality.
//
// The profile is exact — not an estimate — for LRU replacement with
// write-allocate fills, where every probe (hit or fill) refreshes
// recency and the set therefore holds exactly the maxAssoc most
// recently touched lines mapping to it. See StackDistSim for the
// config-facing wrapper and `docs/TESTING.md` for the oracle layers
// that pin this equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_stats.hpp"
#include "memx/cachesim/cache_config.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Exact LRU/write-allocate hit-miss profile of one trace at one line
/// size, for every numSets in {1, 2, 4, ..., maxSets} and every
/// associativity in [1, maxAssoc].
class AllAssocProfile {
public:
  /// One pass over `trace`. `lineBytes` and `maxSets` must be powers of
  /// two, `maxAssoc` >= 1. Accesses straddling line boundaries probe
  /// each touched line, exactly like CacheSim.
  AllAssocProfile(const Trace& trace, std::uint32_t lineBytes,
                  std::uint32_t maxSets, std::uint32_t maxAssoc);

  [[nodiscard]] std::uint32_t lineBytes() const noexcept {
    return lineBytes_;
  }
  [[nodiscard]] std::uint32_t maxSets() const noexcept {
    return 1u << (numS_ - 1);
  }
  [[nodiscard]] std::uint32_t maxAssoc() const noexcept { return maxAssoc_; }

  /// References presented (read-like + writes), line probes made.
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads_ + writes_;
  }
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t lineProbes() const noexcept { return probes_; }

  /// Exact miss count of an LRU write-allocate cache with `numSets`
  /// sets of `assoc` ways (numSets a power of two <= maxSets, assoc in
  /// [1, maxAssoc]). A reference misses when any of its line probes
  /// misses, mirroring CacheSim's per-access accounting.
  [[nodiscard]] std::uint64_t misses(std::uint32_t numSets,
                                     std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t readMisses(std::uint32_t numSets,
                                         std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t writeMisses(std::uint32_t numSets,
                                          std::uint32_t assoc) const;
  /// Line fills (one per missing probe; write-allocate fills included).
  [[nodiscard]] std::uint64_t lineFills(std::uint32_t numSets,
                                        std::uint32_t assoc) const;

  /// CacheStats exactly as CacheSim would report them for an LRU
  /// write-allocate cache with this geometry — for every field a stack
  /// distance determines. `writebacks` is always 0: dirty-eviction
  /// counting needs per-configuration fill state, which is precisely
  /// what this analysis avoids (write-through caches genuinely have
  /// none; write-back callers needing it must simulate). `memWrites` is
  /// exact for write-through (one word store per write probe) and
  /// exactly 0 for write-back with write-allocate.
  [[nodiscard]] CacheStats stats(std::uint32_t numSets, std::uint32_t assoc,
                                 WritePolicy writePolicy) const;

private:
  /// Bucket index of a per-set stack distance: the exact distance when
  /// < maxAssoc_, else maxAssoc_ ("misses at every tracked way count";
  /// cold first touches land here too).
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return maxAssoc_ + std::size_t{1};
  }
  [[nodiscard]] unsigned levelOf(std::uint32_t numSets) const;
  [[nodiscard]] std::uint64_t tailSum(const std::vector<std::uint64_t>& hist,
                                      unsigned level,
                                      std::uint32_t assoc) const;

  std::uint32_t lineBytes_ = 0;
  std::uint32_t maxAssoc_ = 0;
  unsigned lineShift_ = 0;
  unsigned numS_ = 0;  ///< set-count levels: s in [0, numS_) -> 2^s sets

  // Flattened histograms, indexed [level * bucketCount() + bucket].
  std::vector<std::uint64_t> refHistRead_;   ///< per-reference worst bucket
  std::vector<std::uint64_t> refHistWrite_;
  std::vector<std::uint64_t> lineHist_;      ///< per-line-probe bucket

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t writeProbes_ = 0;  ///< probes belonging to write refs
};

}  // namespace memx
