// All-associativity stack-distance analysis (Hill & Smith 1989).
//
// Mattson's observation gives every fully-associative LRU capacity from
// one trace pass; Hill and Smith generalized it to set-associative
// caches: under bit-selection indexing, an access hits in a cache with
// 2^s sets and A ways iff fewer than A distinct lines of the same set
// were touched since its previous touch. Conflict sets are nested in s
// (two lines that conflict at 2^s sets also conflict at every coarser
// set count), so one pass can maintain the per-set recency order for
// *every* power-of-two set count at once and read off exact LRU miss
// counts for the whole (sets, associativity) grid.
//
// Instead of Hill-Smith's single global stack walk (O(stack depth) per
// access), this implementation keeps, per set count, a bounded
// per-set recency list truncated to `maxAssoc` entries — the top of the
// true per-set LRU stack, which is all that associativities up to
// maxAssoc can distinguish. Distances at or beyond maxAssoc and cold
// (first-touch) lines fold into one "miss at every tracked
// associativity" bucket, making the per-probe cost a hard
// O(setCounts * maxAssoc) regardless of trace locality.
//
// The profile is exact — not an estimate — for LRU replacement with
// write-allocate fills, where every probe (hit or fill) refreshes
// recency and the set therefore holds exactly the maxAssoc most
// recently touched lines mapping to it.
//
// Write-back traffic falls out of the same pass (dirty-stack
// accounting): by inclusion, a resident line's dirty state is monotone
// in associativity — it entered the A'-way cache no later than the
// A-way one for A' > A, so "written since fill" at A implies it at A'.
// Each recency entry therefore carries one threshold (the smallest
// associativity at which it is dirty): a write touch lowers it to 1
// everywhere (hits dirty the line, write-allocate fills insert it
// dirty), a read touch at stack distance d refills caches with A <= d
// clean (threshold raised to d+1). A displaced entry rippling from
// depth d to d+1 is exactly an eviction from the (d+1)-way cache, so
// comparing its threshold against d+1 during the scan yields the exact
// per-associativity writeback count with no extra passes. Lines still
// dirty when the trace ends are never written back, matching CacheSim.
// See StackDistSim for the config-facing wrapper and `docs/TESTING.md`
// for the oracle layers that pin this equivalence.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_stats.hpp"
#include "memx/cachesim/cache_config.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Exact LRU/write-allocate hit-miss profile of one trace at one line
/// size, for every numSets in {1, 2, 4, ..., maxSets} and every
/// associativity in [1, maxAssoc].
class AllAssocProfile {
public:
  /// Empty profile ready for incremental feed(). `lineBytes` and
  /// `maxSets` must be powers of two, `maxAssoc` >= 1. Accesses
  /// straddling line boundaries probe each touched line, exactly like
  /// CacheSim.
  AllAssocProfile(std::uint32_t lineBytes, std::uint32_t maxSets,
                  std::uint32_t maxAssoc);

  /// One pass over `trace` (equivalent to the empty constructor plus a
  /// single feed of the whole trace).
  AllAssocProfile(const Trace& trace, std::uint32_t lineBytes,
                  std::uint32_t maxSets, std::uint32_t maxAssoc);

  /// Present `count` further references, in trace order. Splitting a
  /// trace into any sequence of feed() calls yields bit-identical
  /// histograms to one whole-trace pass — recency state persists across
  /// calls — which is what lets out-of-core traces stream through in
  /// chunks. Every accessor below is valid between feeds and reports
  /// the profile of the references seen so far.
  void feed(const MemRef* refs, std::size_t count);
  void feed(const Trace& trace) { feed(trace.refs().data(), trace.size()); }

  [[nodiscard]] std::uint32_t lineBytes() const noexcept {
    return lineBytes_;
  }
  [[nodiscard]] std::uint32_t maxSets() const noexcept {
    return 1u << (numS_ - 1);
  }
  [[nodiscard]] std::uint32_t maxAssoc() const noexcept { return maxAssoc_; }

  /// References presented (read-like + writes), line probes made.
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads_ + writes_;
  }
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t lineProbes() const noexcept { return probes_; }

  /// Exact miss count of an LRU write-allocate cache with `numSets`
  /// sets of `assoc` ways (numSets a power of two <= maxSets, assoc in
  /// [1, maxAssoc]). A reference misses when any of its line probes
  /// misses, mirroring CacheSim's per-access accounting.
  [[nodiscard]] std::uint64_t misses(std::uint32_t numSets,
                                     std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t readMisses(std::uint32_t numSets,
                                         std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t writeMisses(std::uint32_t numSets,
                                          std::uint32_t assoc) const;
  /// Line fills (one per missing probe; write-allocate fills included).
  [[nodiscard]] std::uint64_t lineFills(std::uint32_t numSets,
                                        std::uint32_t assoc) const;
  /// Exact count of dirty lines a write-back LRU write-allocate cache
  /// with this geometry evicts (and hence writes back) over the trace.
  /// Dirty lines still resident at trace end are not counted — CacheSim
  /// does not flush either.
  [[nodiscard]] std::uint64_t writebacks(std::uint32_t numSets,
                                         std::uint32_t assoc) const;

  /// CacheStats exactly as CacheSim would report them for an LRU
  /// write-allocate cache with this geometry — every field, both write
  /// policies. `writebacks` is the exact dirty-eviction count under
  /// write-back (see writebacks(); structurally 0 under write-through,
  /// where lines never dirty). `memWrites` is exact for write-through
  /// (one word store per write probe) and exactly 0 for write-back with
  /// write-allocate, both as CacheSim reports them.
  [[nodiscard]] CacheStats stats(std::uint32_t numSets, std::uint32_t assoc,
                                 WritePolicy writePolicy) const;

private:
  /// Bucket index of a per-set stack distance: the exact distance when
  /// < maxAssoc_, else maxAssoc_ ("misses at every tracked way count";
  /// cold first touches land here too).
  [[nodiscard]] std::size_t bucketCount() const noexcept {
    return maxAssoc_ + std::size_t{1};
  }
  [[nodiscard]] unsigned levelOf(std::uint32_t numSets) const;
  [[nodiscard]] std::uint64_t tailSum(const std::vector<std::uint64_t>& hist,
                                      unsigned level,
                                      std::uint32_t assoc) const;

  /// Packed feeding pass: each recency entry carries its dirty
  /// threshold in the top byte of the 64-bit key slot, so the ripple
  /// scan streams one array instead of a keys array plus a parallel
  /// thresholds array. Requires maxAssoc_ <= 254 (threshold fits a
  /// byte) and every touched line index below 2^56 - 1 (key = line + 1
  /// fits the low 56 bits). Returns the number of references consumed;
  /// a short count means the next reference breaks the address bound
  /// (its state is untouched) and feed() migrates to the split-array
  /// representation before continuing. Defined in all_assoc.cpp.
  [[nodiscard]] std::size_t feedPacked(const MemRef* refs,
                                       std::size_t count);

  /// Split-array feeding pass, parameterized on the dirty-threshold
  /// element type (uint8_t whenever maxAssoc_ <= 254, else uint32_t):
  /// the general fallback for geometries or address ranges the packed
  /// pass cannot encode. Defined in all_assoc.cpp.
  template <typename DirtyT>
  void feedSplit(const MemRef* refs, std::size_t count);

  /// Decode the packed slots into split key + threshold arrays
  /// (byte-wide thresholds; only packed-eligible geometries ever reach
  /// the packed representation). The decoded state is exactly what a
  /// split-array pass over the same prefix would hold, so feeding
  /// continues bit-identically after migration.
  void migrateFromPacked();

  /// Recency-state representation currently in use; feed() migrates
  /// Packed -> Split8 at most once, when a line index outgrows the
  /// packed encoding.
  enum class Mode { Packed, Split8, Split32 };

  std::uint32_t lineBytes_ = 0;
  std::uint32_t maxAssoc_ = 0;
  unsigned lineShift_ = 0;
  unsigned numS_ = 0;  ///< set-count levels: s in [0, numS_) -> 2^s sets

  // Flattened histograms, indexed [level * bucketCount() + bucket].
  std::vector<std::uint64_t> refHistRead_;   ///< per-reference worst bucket
  std::vector<std::uint64_t> refHistWrite_;
  std::vector<std::uint64_t> lineHist_;      ///< per-line-probe bucket
  /// Dirty evictions per exact associativity (slot a in [1, maxAssoc]
  /// counts writebacks of the a-way cache; slot 0 unused). A direct
  /// per-assoc count, not a tail distribution: an entry crossing depth
  /// a-1 -> a leaves exactly the a-way cache.
  std::vector<std::uint64_t> dirtyEvictHist_;

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t writeProbes_ = 0;  ///< probes belonging to write refs

  // Recency state, persistent across feed() calls. slots_ holds the
  // bounded per-(level, set) recency lists; in Packed mode each entry
  // carries its dirty threshold in the top byte, in Split modes the
  // thresholds live in the parallel dirty8_/dirty32_ array.
  Mode mode_ = Mode::Packed;
  std::vector<std::uint64_t> slots_;
  std::vector<std::uint8_t> dirty8_;
  std::vector<std::uint32_t> dirty32_;
  std::vector<std::uint32_t> worst_;  ///< per-level scratch (straddles)
};

}  // namespace memx
