// Single-pass (sets, ways) grid evaluation for FIFO and tree-PLRU.
//
// FIFO and tree-PLRU are not stack algorithms: neither admits a
// capacity-independent priority ordering, and their contents are not
// even inclusive across way counts (Bélády's anomaly — see the pinned
// instance in tests/stackdist_test.cpp, where FIFO misses *increase*
// with ways at fixed capacity). So no Mattson/Hill–Smith histogram can
// serve these grids; what one pass *can* amortize is everything the
// cells share. PolicyGridProfile keeps genuine per-cell replacement
// state for every (2^s sets, 2^j ways) cell with 2^s <= maxSets and
// 2^j <= maxAssoc, and spends one address decode, one set-index
// shift/mask cascade and one streamed trace chunk across all of them:
//
//  - per cell, the key array holds the resident lines of each set
//    (encoded line + 1, 0 = empty) plus compact policy state: a
//    round-robin fill cursor for FIFO (fills prefer the first empty
//    way and stamps are written only on fill, so the oldest fill *is*
//    a cyclic cursor) and the PLRU tree bits packed into one word per
//    set — and a per-way dirty bitmask, because a line's dirty state
//    depends on when that particular cell filled it (the dirty
//    thresholds of AllAssocProfile ride on inclusion, which FIFO/PLRU
//    lack, so there is no monotone shortcut here);
//
//  - a Hill–Smith-style MRU short-circuit where the policies permit:
//    after any probe of line X, X is resident in every cell of its
//    set, so a re-probe is a FIFO no-op and an idempotent PLRU tree
//    touch. One MRU key per (set level, set) decides it, and because a
//    finer set's probe sequence is a subsequence of its enclosing
//    coarser set's, an MRU match at level s covers every finer level
//    too — the whole remaining cascade is skipped. Writes additionally
//    require the MRU line to be dirty everywhere (tracked by one flag
//    beside the key) or they fall through to set per-cell dirty bits.
//
// Hits cost no per-cell counter updates: only misses, fills and dirty
// evictions are tallied, and stats() derives hits by subtraction, so
// the MRU fast path really is a handful of compares per reference.
//
// Because the cells are fully independent (no inclusion ties them
// together), a pass may legally simulate any subset of the grid:
// restrictCells() masks the pass down to exactly the (sets, ways)
// pairs a bank will query, which is what keeps a sweep's grid pass
// cheaper than per-config simulation even when the bank touches only
// a diagonal of the lattice. Set levels with no active cell drop out
// of the cascade entirely: each level's MRU state is self-contained
// (a full cascade rewrites the MRU key of every coarser active level
// it passes, so a break can never fire on a stale key), and the
// coarse-to-fine covering argument runs unchanged over the remaining
// levels.
//
// The profile is exact — CacheSim bit-for-bit, both write policies —
// for FIFO or TreePLRU replacement with write-allocate fills. See
// StackDistSim for the config-facing wrapper and docs/TESTING.md for
// the dual-oracle layers (RefCacheSim and the retired Mattson walk)
// that pin the equivalence.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Exact FIFO or tree-PLRU write-allocate hit-miss profile of one trace
/// at one line size, for every numSets in {1, 2, ..., maxSets} and
/// every associativity in {1, 2, ..., maxAssoc} (both power-of-two
/// grids — CacheConfig admits no other way counts).
class PolicyGridProfile {
public:
  /// Empty profile ready for incremental feed(). `lineBytes`, `maxSets`
  /// and `maxAssoc` must be powers of two, maxAssoc <= 64 (the dirty
  /// mask and PLRU tree bits of one set pack into a word), `policy`
  /// FIFO or TreePLRU. Accesses straddling line boundaries probe each
  /// touched line, exactly like CacheSim.
  PolicyGridProfile(ReplacementPolicy policy, std::uint32_t lineBytes,
                    std::uint32_t maxSets, std::uint32_t maxAssoc);

  /// One pass over `trace` (equivalent to the empty constructor plus a
  /// single feed of the whole trace).
  PolicyGridProfile(const Trace& trace, ReplacementPolicy policy,
                    std::uint32_t lineBytes, std::uint32_t maxSets,
                    std::uint32_t maxAssoc);

  /// Restrict the pass to the given (numSets, associativity) cells:
  /// every listed pair must lie inside the profiled grid, and only
  /// those cells are simulated (and chargeable) from here on. Must be
  /// called before the first feed — the unlisted cells' state is never
  /// advanced, so querying them afterwards violates the accessor
  /// contracts below and throws. Listed cells report bit-identical
  /// counts to an unrestricted pass (cells are independent; see the
  /// header comment).
  void restrictCells(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells);

  /// Present `count` further references, in trace order. Splitting a
  /// trace into any sequence of feed() calls yields bit-identical
  /// counts to one whole-trace pass — cell state persists across calls
  /// — so out-of-core traces stream through in chunks. Every accessor
  /// below is valid between feeds.
  void feed(const MemRef* refs, std::size_t count);
  void feed(const Trace& trace) { feed(trace.refs().data(), trace.size()); }

  [[nodiscard]] ReplacementPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint32_t lineBytes() const noexcept {
    return lineBytes_;
  }
  [[nodiscard]] std::uint32_t maxSets() const noexcept {
    return 1u << (numS_ - 1);
  }
  [[nodiscard]] std::uint32_t maxAssoc() const noexcept {
    return 1u << (numJ_ - 1);
  }
  /// Number of (sets, ways) cells simulated by the pass — the full
  /// grid, or the restricted subset after restrictCells().
  [[nodiscard]] std::size_t cellCount() const noexcept {
    return activeCells_;
  }

  /// References presented (read-like + writes), line probes made.
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads_ + writes_;
  }
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  [[nodiscard]] std::uint64_t lineProbes() const noexcept { return probes_; }

  /// Exact miss count of a cache with `numSets` sets of `assoc` ways
  /// under this profile's replacement policy (both powers of two within
  /// the profiled grid). A reference misses when any of its line probes
  /// misses, mirroring CacheSim's per-access accounting.
  [[nodiscard]] std::uint64_t misses(std::uint32_t numSets,
                                     std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t readMisses(std::uint32_t numSets,
                                         std::uint32_t assoc) const;
  [[nodiscard]] std::uint64_t writeMisses(std::uint32_t numSets,
                                          std::uint32_t assoc) const;
  /// Line fills (one per missing probe; write-allocate fills included).
  [[nodiscard]] std::uint64_t lineFills(std::uint32_t numSets,
                                        std::uint32_t assoc) const;
  /// Exact count of dirty lines a write-back cache with this geometry
  /// evicts (and hence writes back) over the trace. Dirty lines still
  /// resident at trace end are not counted — CacheSim does not flush
  /// either.
  [[nodiscard]] std::uint64_t writebacks(std::uint32_t numSets,
                                         std::uint32_t assoc) const;

  /// CacheStats exactly as CacheSim would report them for a
  /// write-allocate cache of this geometry and policy — every field,
  /// both write policies (same contract as AllAssocProfile::stats).
  [[nodiscard]] CacheStats stats(std::uint32_t numSets, std::uint32_t assoc,
                                 WritePolicy writePolicy) const;

private:
  /// One active set level of the feed cascade, precomputed so the hot
  /// loop runs on flat descriptors instead of re-deriving masks and
  /// offsets per probe. State is laid out set-major within a level:
  /// all active cells' key slots (and per-set words) for one set index
  /// sit in one contiguous strip, so a probe touches one or two cache
  /// lines instead of one scattered block per cell.
  struct LevelPlan {
    std::uint32_t s = 0;           ///< set level: 2^s sets
    std::uint64_t setMask = 0;     ///< (1 << s) - 1
    std::size_t mruBase = 0;       ///< this level's block in mruKey_
    std::size_t keyBase = 0;       ///< this level's block in keys_
    std::size_t setBase = 0;       ///< this level's per-set-word block
    std::uint32_t keyStride = 0;   ///< key slots per set strip
    std::uint32_t setStride = 0;   ///< per-set words per set strip
    std::uint32_t cellBegin = 0;   ///< [cellBegin, cellEnd) in cellPlan_
    std::uint32_t cellEnd = 0;
  };
  /// One active cell of a level: its counter index and strip offsets.
  struct CellPlan {
    std::uint32_t j = 0;       ///< way level: 2^j ways
    std::uint32_t ways = 0;    ///< 1 << j
    std::uint32_t cell = 0;    ///< flat counter index s * numJ_ + j
    std::uint32_t keySub = 0;  ///< offset within a set's key strip
    std::uint32_t setSub = 0;  ///< offset within a set's word strip
  };

  /// Flat cell index of (set level s, way level j); validates the
  /// geometry lies inside the profiled grid but not that the cell is
  /// simulated.
  [[nodiscard]] std::size_t cellIndex(std::uint32_t numSets,
                                      std::uint32_t assoc) const;
  /// cellIndex plus the accessor contract: the cell must be active
  /// (i.e. not masked off by restrictCells).
  [[nodiscard]] std::size_t cellOf(std::uint32_t numSets,
                                   std::uint32_t assoc) const;

  /// Rebuild the plan descriptors and (re)allocate the replacement
  /// state from levelMask_. Only legal while no reference has been
  /// fed — the state is zeroed.
  void rebuildPlan();

  template <bool kFifo>
  void feedImpl(const MemRef* refs, std::size_t count);

  /// Probe every active cell of one level for `key` on the slow path
  /// (the MRU short-circuit did not fire). Misses are charged straight
  /// to `missCounters` (the read or write per-cell counters); a
  /// straddling access (kStraddle) sets the anyMiss_ scratch flags
  /// instead so the caller can merge its probes.
  template <bool kFifo, bool kWrite, bool kStraddle>
  void probeLevel(const LevelPlan& level, std::uint64_t setIdx,
                  std::uint64_t key, std::uint64_t* missCounters);

  ReplacementPolicy policy_ = ReplacementPolicy::FIFO;
  std::uint32_t lineBytes_ = 0;
  unsigned lineShift_ = 0;
  unsigned numS_ = 0;  ///< set-count levels: s in [0, numS_) -> 2^s sets
  unsigned numJ_ = 0;  ///< way levels: j in [0, numJ_) -> 2^j ways
  std::size_t activeCells_ = 0;  ///< cells the pass simulates

  /// Per set level, a bitmask of the way levels j whose cell (s, j) is
  /// simulated; all-ones until restrictCells() narrows it. The feed
  /// cascade visits only the set bits (via the plan below), and levels
  /// whose mask is empty drop out of the cascade altogether — that is
  /// the whole cost model of a restricted pass.
  std::vector<std::uint32_t> levelMask_;
  /// Active levels in ascending (coarse-to-fine) order and their
  /// active cells, flattened; rebuilt by rebuildPlan().
  std::vector<LevelPlan> levels_;
  std::vector<CellPlan> cellPlan_;

  // Per-cell counters, indexed [s * numJ_ + j]. Hits are derived
  // (reads_/writes_ minus misses), so the fast path never touches them.
  std::vector<std::uint64_t> readMiss_;
  std::vector<std::uint64_t> writeMiss_;
  std::vector<std::uint64_t> lineFill_;
  std::vector<std::uint64_t> dirtyEvict_;

  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t writeProbes_ = 0;  ///< probes belonging to write refs

  // Replacement state, laid out by rebuildPlan(). keys_ holds, per
  // active level, 2^s set strips of keyStride key slots (line + 1;
  // 0 = empty; valid slots form a prefix because fills prefer the
  // first empty way and nothing invalidates); a cell's slots start at
  // keySub within its set's strip. The per-set words — FIFO cursor,
  // PLRU tree bits, dirty way mask — are striped the same way with
  // setStride words per set.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> cursor_;    ///< FIFO round-robin fill way
  std::vector<std::uint64_t> treeBits_;  ///< PLRU tree, CacheSim layout
  std::vector<std::uint64_t> dirtyMask_; ///< per-way dirty bits

  // MRU short-circuit state: per (active set level, set), the key of
  // the last line probed there and whether that probe left it dirty in
  // every cell of the set (see the header comment for the cross-level
  // covering argument). A level's block starts at its mruBase.
  std::vector<std::uint64_t> mruKey_;
  std::vector<std::uint8_t> mruDirty_;

  std::vector<std::uint8_t> anyMiss_;  ///< per-cell scratch (straddles)
};

}  // namespace memx
