// Stack-distance / policy-grid evaluation of a bank of cache configs.
//
// StackDistSim is the analytic sibling of MultiCacheSim: same bank
// interface (configs in, per-config CacheStats out, one run() over a
// trace), but instead of simulating each member it builds one profile
// per distinct (line size, replacement policy) and reads every
// member's hit/miss counts off that profile's (sets, associativity)
// grid. LRU members ride an AllAssocProfile (Hill–Smith stack
// distances: O(n)-class work per line size, independent of the member
// count); FIFO and tree-PLRU members ride a PolicyGridProfile (a
// single-pass grid simulator with an MRU short-circuit — FIFO/PLRU
// are not stack algorithms, so the shared work is the address decode,
// the set-index cascade and the streamed chunk, not a common stack).
// Either way the trace is decoded once per profile, which is what
// makes large sweeps cheap.
//
// LRU, FIFO and tree-PLRU replacement with write-allocate fills are in
// the analysis' domain (supports() is the eligibility predicate
// Explorer uses to pick a backend); only Random replacement remains
// simulation-bound. Both write policies are exact, including
// write-back dirty-eviction counts — see AllAssocProfile's dirty-stack
// accounting and PolicyGridProfile's per-cell dirty bits.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/stackdist/all_assoc.hpp"
#include "memx/stackdist/policy_grid.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// A bank of LRU/FIFO/PLRU write-allocate configurations evaluated
/// analytically from per-(line size, policy) profiles.
class StackDistSim {
public:
  /// Throws on an empty bank, an invalid config, or a config outside
  /// the analytic domain (see supports()).
  explicit StackDistSim(const std::vector<CacheConfig>& configs);

  /// True iff the analytic backends yield exact statistics for
  /// `config`: LRU, FIFO or tree-PLRU replacement with write-allocate
  /// fills. (Geometry is unrestricted; both write policies are exact —
  /// write-through word stores and write-back dirty evictions alike
  /// fall out of a single pass. Random replacement draws from a
  /// simulator-owned rng stream and stays simulation-only.)
  [[nodiscard]] static bool supports(const CacheConfig& config) noexcept {
    return config.replacement != ReplacementPolicy::Random &&
           config.allocatePolicy == AllocatePolicy::WriteAllocate;
  }

  /// Profile `trace` once per distinct (line size, policy) and fill
  /// every member's statistics. Single-shot: a second call throws
  /// (profiles are per-trace; build a new bank per trace).
  void run(const Trace& trace);

  /// Drain `source` through streaming profiles in chunks of `chunkRefs`
  /// references: one pass over the stream feeds every group, so
  /// out-of-core traces profile in bounded memory with bit-identical
  /// statistics to the whole-trace run. Callable repeatedly — profile
  /// state persists and stats() reflects everything streamed so far,
  /// which is how the streamed drivers split warmup from counted
  /// references. Cannot be mixed with run(Trace) on the same bank.
  void run(TraceSource& source,
           std::size_t chunkRefs = kDefaultTraceChunkRefs);

  [[nodiscard]] std::size_t size() const noexcept { return configs_.size(); }
  [[nodiscard]] const CacheConfig& config(std::size_t i) const {
    return configs_[i];
  }
  /// Statistics of member `i`; only valid after run().
  [[nodiscard]] const CacheStats& stats(std::size_t i) const;

  /// Number of trace passes run() makes (= distinct (line size,
  /// policy) groups in the bank); exposed for observability counters.
  [[nodiscard]] std::size_t passCount() const noexcept {
    return groups_.size();
  }
  /// How many of those passes are FIFO/PLRU grid passes, and how many
  /// (sets, ways) cells those grids simulate in total (each pass is
  /// restricted to the distinct geometries its members query) — the
  /// stackdist.grid_passes / stackdist.grid_cells counters.
  [[nodiscard]] std::size_t gridPassCount() const noexcept {
    return gridPasses_;
  }
  [[nodiscard]] std::size_t gridCellCount() const noexcept {
    return gridCells_;
  }

private:
  /// Members sharing one (line size, replacement policy) share one
  /// profile: an AllAssocProfile for LRU, a PolicyGridProfile else.
  struct LineGroup {
    std::uint32_t lineBytes = 0;
    ReplacementPolicy policy = ReplacementPolicy::LRU;
    std::uint32_t maxSets = 1;
    std::uint32_t maxAssoc = 1;
    std::vector<std::size_t> members;  ///< indices into configs_
    /// Distinct (numSets, associativity) pairs among the members; grid
    /// groups restrict their pass to exactly these cells.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cells;
  };

  /// Re-derive every member's statistics from its group's profile
  /// (valid at any chunk boundary — the profiles are incremental).
  void refreshStats();
  void buildProfiles();

  std::vector<CacheConfig> configs_;
  std::vector<LineGroup> groups_;
  std::vector<CacheStats> stats_;
  /// Incremental profiles, parallel to groups_ (exactly one per group
  /// is engaged, by the group's policy); built lazily by the first
  /// run() call. run(Trace) feeds them whole, run(TraceSource&) in
  /// chunks — the state is identical either way.
  std::vector<AllAssocProfile> lruProfiles_;
  std::vector<PolicyGridProfile> gridProfiles_;
  /// Per-group index into lruProfiles_ or gridProfiles_.
  std::vector<std::size_t> profileIndex_;
  std::size_t gridPasses_ = 0;
  std::size_t gridCells_ = 0;
  bool ran_ = false;
  bool streaming_ = false;
};

/// Convenience: evaluate `trace` against every config analytically,
/// returning the per-config statistics in input order. Exactly matches
/// simulateTraceMulti for supported configs, every field included.
[[nodiscard]] std::vector<CacheStats> stackDistStats(
    const std::vector<CacheConfig>& configs, const Trace& trace);

}  // namespace memx
