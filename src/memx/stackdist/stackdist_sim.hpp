// Stack-distance evaluation of a bank of cache configurations.
//
// StackDistSim is the analytic sibling of MultiCacheSim: same bank
// interface (configs in, per-config CacheStats out, one run() over a
// trace), but instead of simulating each member it builds one
// AllAssocProfile per distinct line size and reads every member's
// hit/miss counts off the profile's (sets, associativity) grid. The
// trace cost is O(n log U)-class work per line size — independent of
// how many configurations share it — which is what makes large LRU
// sweeps cheap.
//
// Only LRU replacement with write-allocate fills is in the analysis'
// domain (supports() is the eligibility predicate Explorer uses to pick
// a backend). Both write policies are exact, including write-back
// dirty-eviction counts — see AllAssocProfile's dirty-stack accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/stackdist/all_assoc.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// A bank of LRU/write-allocate configurations evaluated analytically
/// from per-line-size stack-distance profiles.
class StackDistSim {
public:
  /// Throws on an empty bank, an invalid config, or a config outside
  /// the stack-distance domain (see supports()).
  explicit StackDistSim(const std::vector<CacheConfig>& configs);

  /// True iff stack-distance analysis yields exact statistics for
  /// `config`: LRU replacement with write-allocate fills. (Geometry is
  /// unrestricted; both write policies are exact — write-through word
  /// stores and write-back dirty evictions alike fall out of the
  /// profile's single pass.)
  [[nodiscard]] static bool supports(const CacheConfig& config) noexcept {
    return config.replacement == ReplacementPolicy::LRU &&
           config.allocatePolicy == AllocatePolicy::WriteAllocate;
  }

  /// Profile `trace` once per distinct line size and fill every
  /// member's statistics. Single-shot: a second call throws (profiles
  /// are per-trace; build a new bank per trace).
  void run(const Trace& trace);

  /// Drain `source` through streaming per-line-size profiles in chunks
  /// of `chunkRefs` references: one pass over the stream feeds every
  /// line group, so out-of-core traces profile in bounded memory with
  /// bit-identical statistics to the whole-trace run. Callable
  /// repeatedly — profile state persists and stats() reflects
  /// everything streamed so far, which is how the streamed drivers
  /// split warmup from counted references. Cannot be mixed with
  /// run(Trace) on the same bank.
  void run(TraceSource& source,
           std::size_t chunkRefs = kDefaultTraceChunkRefs);

  [[nodiscard]] std::size_t size() const noexcept { return configs_.size(); }
  [[nodiscard]] const CacheConfig& config(std::size_t i) const {
    return configs_[i];
  }
  /// Statistics of member `i`; only valid after run().
  [[nodiscard]] const CacheStats& stats(std::size_t i) const;

  /// Number of trace passes run() makes (= distinct line sizes in the
  /// bank); exposed for observability counters.
  [[nodiscard]] std::size_t passCount() const noexcept {
    return groups_.size();
  }

private:
  /// Members sharing one line size share one AllAssocProfile.
  struct LineGroup {
    std::uint32_t lineBytes = 0;
    std::uint32_t maxSets = 1;
    std::uint32_t maxAssoc = 1;
    std::vector<std::size_t> members;  ///< indices into configs_
  };

  /// Re-derive every member's statistics from its group's profile
  /// (valid at any chunk boundary — the profiles are incremental).
  void refreshStats(const std::vector<AllAssocProfile>& profiles);

  std::vector<CacheConfig> configs_;
  std::vector<LineGroup> groups_;
  std::vector<CacheStats> stats_;
  /// Streaming profiles, parallel to groups_; built lazily by the
  /// first run(TraceSource&) call and empty in whole-trace mode.
  std::vector<AllAssocProfile> profiles_;
  bool ran_ = false;
  bool streaming_ = false;
};

/// Convenience: evaluate `trace` against every config analytically,
/// returning the per-config statistics in input order. Exactly matches
/// simulateTraceMulti for supported configs, every field included.
[[nodiscard]] std::vector<CacheStats> stackDistStats(
    const std::vector<CacheConfig>& configs, const Trace& trace);

}  // namespace memx
