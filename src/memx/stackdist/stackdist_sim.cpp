#include "memx/stackdist/stackdist_sim.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

StackDistSim::StackDistSim(const std::vector<CacheConfig>& configs)
    : configs_(configs) {
  MEMX_EXPECTS(!configs_.empty(), "StackDistSim needs at least one config");
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const CacheConfig& config = configs_[i];
    config.validate();
    MEMX_EXPECTS(supports(config),
                 "StackDistSim handles LRU, FIFO and TreePLRU "
                 "write-allocate configs only");
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [&](const LineGroup& g) {
                             return g.lineBytes == config.lineBytes &&
                                    g.policy == config.replacement;
                           });
    if (it == groups_.end()) {
      groups_.push_back(
          LineGroup{config.lineBytes, config.replacement, 1, 1, {}, {}});
      it = std::prev(groups_.end());
    }
    it->maxSets = std::max(it->maxSets, config.numSets());
    it->maxAssoc = std::max(it->maxAssoc, config.associativity);
    const auto geom = std::pair<std::uint32_t, std::uint32_t>{
        config.numSets(), config.associativity};
    if (std::find(it->cells.begin(), it->cells.end(), geom) ==
        it->cells.end()) {
      it->cells.push_back(geom);
    }
    it->members.push_back(i);
  }
  for (const LineGroup& group : groups_) {
    if (group.policy == ReplacementPolicy::LRU) continue;
    ++gridPasses_;
    gridCells_ += group.cells.size();
  }
  stats_.resize(configs_.size());
}

void StackDistSim::buildProfiles() {
  if (!profileIndex_.empty()) return;
  profileIndex_.reserve(groups_.size());
  for (const LineGroup& group : groups_) {
    if (group.policy == ReplacementPolicy::LRU) {
      profileIndex_.push_back(lruProfiles_.size());
      lruProfiles_.emplace_back(group.lineBytes, group.maxSets,
                                group.maxAssoc);
    } else {
      profileIndex_.push_back(gridProfiles_.size());
      gridProfiles_.emplace_back(group.policy, group.lineBytes,
                                 group.maxSets, group.maxAssoc);
      // FIFO/PLRU cells are independent, so the pass only needs the
      // geometries this bank actually queries — on a typical sweep
      // that is a thin diagonal of the full lattice, and skipping the
      // rest is what keeps the grid backend ahead of per-config
      // simulation.
      gridProfiles_.back().restrictCells(group.cells);
    }
  }
}

void StackDistSim::run(const Trace& trace) {
  MEMX_EXPECTS(!ran_, "StackDistSim profiles are per-trace; "
                      "construct a new bank to run another trace");
  ran_ = true;
  buildProfiles();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].policy == ReplacementPolicy::LRU) {
      lruProfiles_[profileIndex_[g]].feed(trace);
    } else {
      gridProfiles_[profileIndex_[g]].feed(trace);
    }
  }
  refreshStats();
}

void StackDistSim::run(TraceSource& source, std::size_t chunkRefs) {
  MEMX_EXPECTS(chunkRefs > 0, "chunkRefs must be positive");
  MEMX_EXPECTS(!ran_ || streaming_,
               "cannot stream into a bank after a whole-trace run(); "
               "construct a new bank");
  buildProfiles();
  ran_ = true;
  streaming_ = true;

  // One pass over the stream feeds every group — unlike run(Trace)'s
  // per-group passes, the stream cannot be rewound.
  std::vector<MemRef> chunk;
  chunk.reserve(chunkRefs);
  while (fillChunk(source, chunk, chunkRefs) > 0) {
    for (AllAssocProfile& profile : lruProfiles_) {
      profile.feed(chunk.data(), chunk.size());
    }
    for (PolicyGridProfile& profile : gridProfiles_) {
      profile.feed(chunk.data(), chunk.size());
    }
  }
  refreshStats();
}

void StackDistSim::refreshStats() {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const LineGroup& group = groups_[g];
    for (const std::size_t i : group.members) {
      const CacheConfig& config = configs_[i];
      stats_[i] =
          group.policy == ReplacementPolicy::LRU
              ? lruProfiles_[profileIndex_[g]].stats(
                    config.numSets(), config.associativity,
                    config.writePolicy)
              : gridProfiles_[profileIndex_[g]].stats(
                    config.numSets(), config.associativity,
                    config.writePolicy);
    }
  }
}

const CacheStats& StackDistSim::stats(std::size_t i) const {
  MEMX_EXPECTS(ran_, "stats() requires a completed run()");
  return stats_[i];
}

std::vector<CacheStats> stackDistStats(
    const std::vector<CacheConfig>& configs, const Trace& trace) {
  StackDistSim bank(configs);
  bank.run(trace);
  std::vector<CacheStats> out;
  out.reserve(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) out.push_back(bank.stats(i));
  return out;
}

}  // namespace memx
