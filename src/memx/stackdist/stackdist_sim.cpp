#include "memx/stackdist/stackdist_sim.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

StackDistSim::StackDistSim(const std::vector<CacheConfig>& configs)
    : configs_(configs) {
  MEMX_EXPECTS(!configs_.empty(), "StackDistSim needs at least one config");
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const CacheConfig& config = configs_[i];
    config.validate();
    MEMX_EXPECTS(supports(config),
                 "StackDistSim handles LRU/write-allocate configs only");
    auto it = std::find_if(groups_.begin(), groups_.end(),
                           [&](const LineGroup& g) {
                             return g.lineBytes == config.lineBytes;
                           });
    if (it == groups_.end()) {
      groups_.push_back(LineGroup{config.lineBytes, 1, 1, {}});
      it = std::prev(groups_.end());
    }
    it->maxSets = std::max(it->maxSets, config.numSets());
    it->maxAssoc = std::max(it->maxAssoc, config.associativity);
    it->members.push_back(i);
  }
  stats_.resize(configs_.size());
}

void StackDistSim::run(const Trace& trace) {
  MEMX_EXPECTS(!ran_, "StackDistSim profiles are per-trace; "
                      "construct a new bank to run another trace");
  ran_ = true;
  for (const LineGroup& group : groups_) {
    const AllAssocProfile profile(trace, group.lineBytes, group.maxSets,
                                  group.maxAssoc);
    for (const std::size_t i : group.members) {
      const CacheConfig& config = configs_[i];
      stats_[i] = profile.stats(config.numSets(), config.associativity,
                                config.writePolicy);
    }
  }
}

void StackDistSim::run(TraceSource& source, std::size_t chunkRefs) {
  MEMX_EXPECTS(chunkRefs > 0, "chunkRefs must be positive");
  MEMX_EXPECTS(!ran_ || streaming_,
               "cannot stream into a bank after a whole-trace run(); "
               "construct a new bank");
  if (profiles_.empty()) {
    profiles_.reserve(groups_.size());
    for (const LineGroup& group : groups_) {
      profiles_.emplace_back(group.lineBytes, group.maxSets, group.maxAssoc);
    }
  }
  ran_ = true;
  streaming_ = true;

  // One pass over the stream feeds every line group — unlike
  // run(Trace)'s per-group passes, the stream cannot be rewound.
  std::vector<MemRef> chunk;
  chunk.reserve(chunkRefs);
  while (fillChunk(source, chunk, chunkRefs) > 0) {
    for (AllAssocProfile& profile : profiles_) {
      profile.feed(chunk.data(), chunk.size());
    }
  }
  refreshStats(profiles_);
}

void StackDistSim::refreshStats(
    const std::vector<AllAssocProfile>& profiles) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (const std::size_t i : groups_[g].members) {
      const CacheConfig& config = configs_[i];
      stats_[i] = profiles[g].stats(config.numSets(), config.associativity,
                                    config.writePolicy);
    }
  }
}

const CacheStats& StackDistSim::stats(std::size_t i) const {
  MEMX_EXPECTS(ran_, "stats() requires a completed run()");
  return stats_[i];
}

std::vector<CacheStats> stackDistStats(
    const std::vector<CacheConfig>& configs, const Trace& trace) {
  StackDistSim bank(configs);
  bank.run(trace);
  std::vector<CacheStats> out;
  out.reserve(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) out.push_back(bank.stats(i));
  return out;
}

}  // namespace memx
