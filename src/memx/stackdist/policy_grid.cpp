#include "memx/stackdist/policy_grid.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {
namespace {

/// CacheSim::plruTouch on a caller-held word: walk the lo/hi/mid tree
/// toward `way`, pointing every traversed node away from it. Identical
/// bit layout to CacheSim for every associativity it can represent (its
/// tree word is 32-bit, capping it at 33 ways; this one is 64-bit and
/// serves the full ways <= 64 grid).
inline void plruTouchWord(std::uint64_t& bits, std::size_t way,
                          std::uint32_t assoc) {
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = assoc;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (way < mid) {
      bits |= (std::uint64_t{1} << node);  // point right, away
      node = 2 * node + 1;
      hi = mid;
    } else {
      bits &= ~(std::uint64_t{1} << node);  // point left
      node = 2 * node + 2;
      lo = mid;
    }
  }
}

/// CacheSim::plruVictim on a caller-held word: follow the pointers.
[[nodiscard]] inline std::size_t plruVictimWord(std::uint64_t bits,
                                                std::uint32_t assoc) {
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = assoc;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (bits & (std::uint64_t{1} << node)) {  // points right
      node = 2 * node + 2;
      lo = mid;
    } else {
      node = 2 * node + 1;
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

PolicyGridProfile::PolicyGridProfile(ReplacementPolicy policy,
                                     std::uint32_t lineBytes,
                                     std::uint32_t maxSets,
                                     std::uint32_t maxAssoc)
    : policy_(policy), lineBytes_(lineBytes) {
  MEMX_EXPECTS(policy == ReplacementPolicy::FIFO ||
                   policy == ReplacementPolicy::TreePLRU,
               "PolicyGridProfile models FIFO and TreePLRU only "
               "(LRU grids belong to AllAssocProfile)");
  MEMX_EXPECTS(isPow2(lineBytes), "lineBytes must be a power of two");
  MEMX_EXPECTS(isPow2(maxSets), "maxSets must be a power of two");
  MEMX_EXPECTS(isPow2(maxAssoc), "maxAssoc must be a power of two");
  MEMX_EXPECTS(maxAssoc <= 64,
               "per-set dirty mask and PLRU tree bits pack into one word, "
               "capping the grid at 64 ways");
  // The key arrays total (2*maxSets - 1) * (2*maxAssoc - 1) slots; the
  // same budget AllAssocProfile enforces, covering every geometry
  // pow2Range can produce by orders of magnitude.
  const auto totalSlots = (2 * static_cast<std::uint64_t>(maxSets) - 1) *
                          (2 * static_cast<std::uint64_t>(maxAssoc) - 1);
  MEMX_EXPECTS(totalSlots <= (std::uint64_t{1} << 28),
               "maxSets * maxAssoc grid too large");

  lineShift_ = log2Exact(lineBytes);
  numS_ = log2Exact(maxSets) + 1;
  numJ_ = log2Exact(maxAssoc) + 1;

  const std::size_t cells = std::size_t{numS_} * numJ_;
  readMiss_.assign(cells, 0);
  writeMiss_.assign(cells, 0);
  lineFill_.assign(cells, 0);
  dirtyEvict_.assign(cells, 0);
  anyMiss_.assign(cells, 0);

  levelMask_.assign(numS_, (1u << numJ_) - 1);  // numJ_ <= 7
  rebuildPlan();
}

void PolicyGridProfile::rebuildPlan() {
  levels_.clear();
  cellPlan_.clear();
  std::size_t keyNext = 0;
  std::size_t setNext = 0;
  std::size_t mruNext = 0;
  for (unsigned s = 0; s < numS_; ++s) {
    if (levelMask_[s] == 0) continue;
    LevelPlan lv;
    lv.s = s;
    lv.setMask = (std::uint64_t{1} << s) - 1;
    lv.mruBase = mruNext;
    lv.keyBase = keyNext;
    lv.setBase = setNext;
    lv.cellBegin = static_cast<std::uint32_t>(cellPlan_.size());
    std::uint32_t keyStride = 0;
    std::uint32_t setStride = 0;
    for (std::uint32_t rem = levelMask_[s]; rem != 0; rem &= rem - 1) {
      const auto j = static_cast<unsigned>(std::countr_zero(rem));
      const std::size_t cell = std::size_t{s} * numJ_ + j;
      cellPlan_.push_back(CellPlan{j, 1u << j,
                                   static_cast<std::uint32_t>(cell),
                                   keyStride, setStride});
      keyStride += 1u << j;
      setStride += 1;
    }
    lv.keyStride = keyStride;
    lv.setStride = setStride;
    lv.cellEnd = static_cast<std::uint32_t>(cellPlan_.size());
    levels_.push_back(lv);
    keyNext += (std::size_t{1} << s) * keyStride;
    setNext += (std::size_t{1} << s) * setStride;
    mruNext += std::size_t{1} << s;
  }
  activeCells_ = cellPlan_.size();

  keys_.assign(keyNext, 0);
  dirtyMask_.assign(setNext, 0);
  if (policy_ == ReplacementPolicy::FIFO) {
    cursor_.assign(setNext, 0);
  } else {
    treeBits_.assign(setNext, 0);
  }
  mruKey_.assign(mruNext, 0);
  mruDirty_.assign(mruNext, 0);
}

void PolicyGridProfile::restrictCells(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& cells) {
  MEMX_EXPECTS(probes_ == 0 && reads_ == 0 && writes_ == 0,
               "restrictCells must be called before the first feed");
  MEMX_EXPECTS(!cells.empty(),
               "a restricted pass needs at least one (sets, ways) cell");
  std::fill(levelMask_.begin(), levelMask_.end(), 0u);
  for (const auto& [numSets, assoc] : cells) {
    const std::size_t cell = cellIndex(numSets, assoc);
    levelMask_[cell / numJ_] |= (1u << (cell % numJ_));
  }
  rebuildPlan();
}

PolicyGridProfile::PolicyGridProfile(const Trace& trace,
                                     ReplacementPolicy policy,
                                     std::uint32_t lineBytes,
                                     std::uint32_t maxSets,
                                     std::uint32_t maxAssoc)
    : PolicyGridProfile(policy, lineBytes, maxSets, maxAssoc) {
  feed(trace);
}

void PolicyGridProfile::feed(const MemRef* refs, std::size_t count) {
  if (policy_ == ReplacementPolicy::FIFO) {
    feedImpl<true>(refs, count);
  } else {
    feedImpl<false>(refs, count);
  }
}

template <bool kFifo, bool kWrite, bool kStraddle>
void PolicyGridProfile::probeLevel(const LevelPlan& level,
                                   std::uint64_t setIdx, std::uint64_t key,
                                   std::uint64_t* missCounters) {
  // Visit only the active cells of this level (all of them on an
  // unrestricted pass) through the flat plan descriptors. The level's
  // state is set-major, so every cell's slots for this set index sit
  // in the two strips resolved here.
  std::uint64_t* const keyStrip =
      keys_.data() + level.keyBase +
      static_cast<std::size_t>(setIdx) * level.keyStride;
  const std::size_t setRow =
      level.setBase + static_cast<std::size_t>(setIdx) * level.setStride;
  const CellPlan* cp = cellPlan_.data() + level.cellBegin;
  const CellPlan* const end = cellPlan_.data() + level.cellEnd;
  for (; cp != end; ++cp) {
    const std::uint32_t ways = cp->ways;
    std::uint64_t* const keys = keyStrip + cp->keySub;
    const std::size_t m = setRow + cp->setSub;

    // Valid slots form a prefix (fills prefer the first empty way and
    // nothing invalidates), so the scan stops at the first empty slot.
    std::uint32_t firstEmpty = ways;
    std::uint32_t hitWay = ways;
    for (std::uint32_t w = 0; w < ways; ++w) {
      const std::uint64_t k = keys[w];
      if (k == key) {
        hitWay = w;
        break;
      }
      if (k == 0) {
        firstEmpty = w;
        break;
      }
    }

    if (hitWay < ways) {
      // Hit: FIFO leaves its fill order untouched; PLRU re-points the
      // tree; a write dirties the way. No counters — hits are derived.
      if constexpr (!kFifo) plruTouchWord(treeBits_[m], hitWay, ways);
      if constexpr (kWrite) dirtyMask_[m] |= (std::uint64_t{1} << hitWay);
      continue;
    }

    // Miss: pick the victim exactly as CacheSim::victimWay does. For
    // FIFO the first-empty-then-oldest-fill rule *is* a cyclic cursor
    // (fills land at 0, 1, ... in order, stamps only ever grow); for
    // PLRU the first empty way wins before the tree is consulted.
    std::uint32_t victim;
    if constexpr (kFifo) {
      victim = cursor_[m];
      cursor_[m] = (victim + 1) & (ways - 1);
    } else {
      victim = firstEmpty < ways
                   ? firstEmpty
                   : static_cast<std::uint32_t>(
                         plruVictimWord(treeBits_[m], ways));
    }
    const std::uint64_t evicted = keys[victim];
    if (evicted != 0 && ((dirtyMask_[m] >> victim) & 1) != 0) {
      ++dirtyEvict_[cp->cell];
    }
    keys[victim] = key;
    if constexpr (kWrite) {
      dirtyMask_[m] |= (std::uint64_t{1} << victim);
    } else {
      dirtyMask_[m] &= ~(std::uint64_t{1} << victim);
    }
    if constexpr (!kFifo) plruTouchWord(treeBits_[m], victim, ways);
    ++lineFill_[cp->cell];
    if constexpr (kStraddle) {
      anyMiss_[cp->cell] = 1;
    } else {
      ++missCounters[cp->cell];
    }
  }
}

template <bool kFifo>
void PolicyGridProfile::feedImpl(const MemRef* refs, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const MemRef& ref = refs[i];
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");
    const bool readLike = isReadLike(ref.type);
    if (readLike) {
      ++reads_;
    } else {
      ++writes_;
    }
    std::vector<std::uint64_t>& refMiss = readLike ? readMiss_ : writeMiss_;

    const std::uint64_t firstLine = ref.addr >> lineShift_;
    const std::uint64_t lastLine = (ref.addr + ref.size - 1) >> lineShift_;

    if (firstLine == lastLine) {
      // Fast path — an access contained in one line (the overwhelmingly
      // common case): the reference misses a cell iff its single probe
      // does, so probeLevel charges misses straight to the counters.
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = firstLine + 1;
      for (const LevelPlan& lv : levels_) {
        const std::uint64_t idx = firstLine & lv.setMask;
        const std::size_t m = lv.mruBase + static_cast<std::size_t>(idx);
        if (mruKey_[m] == key && (readLike || mruDirty_[m] != 0)) {
          // MRU short-circuit: the previous probe of this set was this
          // line, so it is resident in every cell — and a finer set's
          // probes are a subsequence of this one's, so every remaining
          // level is an MRU re-touch too. Writes take this exit only
          // when that previous probe left the line dirty everywhere.
          break;
        }
        if (readLike) {
          probeLevel<kFifo, false, false>(lv, idx, key, refMiss.data());
        } else {
          probeLevel<kFifo, true, false>(lv, idx, key, refMiss.data());
        }
        // In the slow path the old MRU entry never satisfies the write
        // fast-path test, so `isWrite` alone is the new dirty flag.
        mruKey_[m] = key;
        mruDirty_[m] = readLike ? 0 : 1;
      }
      continue;
    }

    // A straddling access probes every touched line; the reference
    // misses a cell iff any probe does (CacheSim's per-access rule),
    // merged through the per-cell scratch flags.
    for (const CellPlan& cp : cellPlan_) anyMiss_[cp.cell] = 0;
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
      ++probes_;
      if (!readLike) ++writeProbes_;
      const std::uint64_t key = line + 1;
      for (const LevelPlan& lv : levels_) {
        const std::uint64_t idx = line & lv.setMask;
        const std::size_t m = lv.mruBase + static_cast<std::size_t>(idx);
        if (mruKey_[m] == key && (readLike || mruDirty_[m] != 0)) break;
        if (readLike) {
          probeLevel<kFifo, false, true>(lv, idx, key, nullptr);
        } else {
          probeLevel<kFifo, true, true>(lv, idx, key, nullptr);
        }
        mruKey_[m] = key;
        mruDirty_[m] = readLike ? 0 : 1;
      }
      if (line == std::numeric_limits<std::uint64_t>::max()) break;
    }
    for (const CellPlan& cp : cellPlan_) {
      if (anyMiss_[cp.cell] != 0) ++refMiss[cp.cell];
    }
  }
}

std::size_t PolicyGridProfile::cellIndex(std::uint32_t numSets,
                                         std::uint32_t assoc) const {
  MEMX_EXPECTS(isPow2(numSets), "numSets must be a power of two");
  MEMX_EXPECTS(isPow2(assoc), "associativity must be a power of two");
  const unsigned s = log2Exact(numSets);
  const unsigned j = log2Exact(assoc);
  MEMX_EXPECTS(s < numS_, "numSets exceeds the profiled maxSets");
  MEMX_EXPECTS(j < numJ_, "associativity exceeds the profiled maxAssoc");
  return std::size_t{s} * numJ_ + j;
}

std::size_t PolicyGridProfile::cellOf(std::uint32_t numSets,
                                      std::uint32_t assoc) const {
  const std::size_t cell = cellIndex(numSets, assoc);
  MEMX_EXPECTS(((levelMask_[cell / numJ_] >> (cell % numJ_)) & 1u) != 0,
               "cell was masked off by restrictCells and never simulated");
  return cell;
}

std::uint64_t PolicyGridProfile::misses(std::uint32_t numSets,
                                        std::uint32_t assoc) const {
  const std::size_t cell = cellOf(numSets, assoc);
  return readMiss_[cell] + writeMiss_[cell];
}

std::uint64_t PolicyGridProfile::readMisses(std::uint32_t numSets,
                                            std::uint32_t assoc) const {
  return readMiss_[cellOf(numSets, assoc)];
}

std::uint64_t PolicyGridProfile::writeMisses(std::uint32_t numSets,
                                             std::uint32_t assoc) const {
  return writeMiss_[cellOf(numSets, assoc)];
}

std::uint64_t PolicyGridProfile::lineFills(std::uint32_t numSets,
                                           std::uint32_t assoc) const {
  return lineFill_[cellOf(numSets, assoc)];
}

std::uint64_t PolicyGridProfile::writebacks(std::uint32_t numSets,
                                            std::uint32_t assoc) const {
  return dirtyEvict_[cellOf(numSets, assoc)];
}

CacheStats PolicyGridProfile::stats(std::uint32_t numSets,
                                    std::uint32_t assoc,
                                    WritePolicy writePolicy) const {
  CacheStats out;
  out.reads = reads_;
  out.writes = writes_;
  out.readMisses = readMisses(numSets, assoc);
  out.readHits = reads_ - out.readMisses;
  out.writeMisses = writeMisses(numSets, assoc);
  out.writeHits = writes_ - out.writeMisses;
  out.lineFills = lineFills(numSets, assoc);
  // Write-through lines never dirty, so only write-back evicts dirty
  // lines; conversely only write-through stores words through to
  // memory. Both match CacheSim field for field (the dirty tracking of
  // the pass never influences victim selection, so one pass serves
  // both policies).
  out.writebacks = writePolicy == WritePolicy::WriteBack
                       ? writebacks(numSets, assoc)
                       : 0;
  out.memWrites =
      writePolicy == WritePolicy::WriteThrough ? writeProbes_ : 0;
  return out;
}

}  // namespace memx
