#include "memx/cachesim/prefetch.hpp"

namespace memx {

PrefetchingCache::PrefetchingCache(const CacheConfig& config,
                                   PrefetchPolicy policy)
    : cache_(config), policy_(policy) {}

void PrefetchingCache::maybePrefetch(std::uint64_t lineAddr) {
  const std::uint64_t nextLine = lineAddr + cache_.config().lineBytes;
  if (cache_.contains(nextLine)) return;
  // Fetch the next line; the probe is a guaranteed read miss whose
  // demand-counter contribution stats() subtracts back out.
  cache_.access(readRef(nextLine, 1));
  ++prefetches_;
  pendingTagged_.insert(nextLine / cache_.config().lineBytes);
}

void PrefetchingCache::access(const MemRef& ref) {
  const std::uint64_t lineBytes = cache_.config().lineBytes;
  const std::uint64_t line = ref.addr / lineBytes;

  const bool wasPending = pendingTagged_.erase(line) > 0;
  const AccessOutcome out = cache_.access(ref);
  if (wasPending && out.hit) ++useful_;

  switch (policy_) {
    case PrefetchPolicy::None:
      break;
    case PrefetchPolicy::OnMiss:
      if (!out.hit) maybePrefetch(line * lineBytes);
      break;
    case PrefetchPolicy::Tagged:
      if (!out.hit || wasPending) maybePrefetch(line * lineBytes);
      break;
  }
}

void PrefetchingCache::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

PrefetchStats PrefetchingCache::stats() const {
  PrefetchStats s;
  s.demand = cache_.stats();
  s.demand.reads -= prefetches_;
  s.demand.readMisses -= prefetches_;
  s.demand.lineFills -= prefetches_;
  s.prefetches = prefetches_;
  s.usefulPrefetches = useful_;
  return s;
}

}  // namespace memx
