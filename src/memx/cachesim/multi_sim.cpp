#include "memx/cachesim/multi_sim.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

MultiCacheSim::MultiCacheSim(const std::vector<CacheConfig>& configs,
                             std::uint64_t rngSeed) {
  MEMX_EXPECTS(!configs.empty(), "multi-sim bank needs at least one config");
  sims_.reserve(configs.size());
  for (const CacheConfig& config : configs) {
    sims_.emplace_back(config, rngSeed);  // validates
    const std::uint32_t line = config.lineBytes;
    const auto it = std::find_if(
        groups_.begin(), groups_.end(),
        [line](const LineGroup& g) { return g.lineBytes == line; });
    if (it == groups_.end()) {
      groups_.push_back(LineGroup{line, log2Exact(line), {sims_.size() - 1}});
    } else {
      it->members.push_back(sims_.size() - 1);
    }
  }
}

void MultiCacheSim::access(const MemRef& ref) {
  MEMX_EXPECTS(ref.size > 0, "access size must be positive");
  const std::uint64_t last = ref.addr + ref.size - 1;
  for (const LineGroup& group : groups_) {
    const std::uint64_t firstLine = ref.addr >> group.lineShift;
    const std::uint64_t lastLine = last >> group.lineShift;
    for (const std::size_t i : group.members) {
      sims_[i].accessLinesFast(firstLine, lastLine, ref.type);
    }
  }
}

void MultiCacheSim::run(const Trace& trace) {
  // Blocked schedule: decompose the trace into line spans once per
  // distinct line size, then replay the spans member by member. The
  // members are independent, so this ordering is statistics-identical to
  // the per-reference interleaving of access(), but each member's tag
  // array stays cache-hot for the whole trace instead of the bank's
  // combined footprint being touched on every reference.
  std::vector<LineSpan> spans;
  spans.reserve(trace.size());
  for (const LineGroup& group : groups_) {
    spans.clear();
    for (const MemRef& ref : trace) {
      MEMX_EXPECTS(ref.size > 0, "access size must be positive");
      spans.push_back(LineSpan{ref.addr >> group.lineShift,
                               (ref.addr + ref.size - 1) >> group.lineShift,
                               ref.type});
    }
    for (const std::size_t i : group.members) {
      sims_[i].replaySpans(spans.data(), spans.size());
    }
  }
}

void MultiCacheSim::run(TraceSource& source, std::size_t chunkRefs) {
  MEMX_EXPECTS(chunkRefs > 0, "chunkRefs must be positive");
  std::vector<MemRef> chunk;
  chunk.reserve(chunkRefs);
  std::vector<LineSpan> spans;
  spans.reserve(chunkRefs);
  while (fillChunk(source, chunk, chunkRefs) > 0) {
    // Same blocked schedule as run(Trace), per chunk: members are
    // independent, so chunking does not change any member's probe
    // sequence and the statistics stay bit-identical.
    for (const LineGroup& group : groups_) {
      spans.clear();
      for (const MemRef& ref : chunk) {
        MEMX_EXPECTS(ref.size > 0, "access size must be positive");
        spans.push_back(
            LineSpan{ref.addr >> group.lineShift,
                     (ref.addr + ref.size - 1) >> group.lineShift,
                     ref.type});
      }
      for (const std::size_t i : group.members) {
        sims_[i].replaySpans(spans.data(), spans.size());
      }
    }
  }
}

void MultiCacheSim::reset() {
  for (CacheSim& sim : sims_) sim.reset();
}

std::vector<CacheStats> simulateTraceMulti(
    const std::vector<CacheConfig>& configs, const Trace& trace) {
  MultiCacheSim bank(configs);
  bank.run(trace);
  std::vector<CacheStats> stats;
  stats.reserve(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    stats.push_back(bank.stats(i));
  }
  return stats;
}

}  // namespace memx
