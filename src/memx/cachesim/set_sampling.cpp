#include "memx/cachesim/set_sampling.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

Trace sampleSets(const Trace& trace, std::uint32_t lineBytes,
                 std::uint32_t numSets, std::uint32_t factor,
                 std::uint32_t offset) {
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");
  MEMX_EXPECTS(isPow2(numSets), "set count must be a power of two");
  MEMX_EXPECTS(isPow2(factor) && factor >= 1,
               "sampling factor must be a power of two");
  MEMX_EXPECTS(factor <= numSets, "cannot sample more than every set");
  MEMX_EXPECTS(offset < factor, "offset must be below the factor");

  Trace sampled;
  for (const MemRef& ref : trace) {
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");
    const std::uint64_t firstLine = ref.addr / lineBytes;
    const std::uint64_t lastLine = (ref.addr + ref.size - 1) / lineBytes;
    if (firstLine == lastLine) {
      if (firstLine % numSets % factor == offset) sampled.push(ref);
      continue;
    }
    // Straddler: CacheSim probes every touched line, and those probes
    // belong to different sets. Split at line granularity and keep the
    // pieces whose set survives the sample, clipped to their line.
    const std::uint64_t end = ref.addr + ref.size - 1;
    for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
      if (line % numSets % factor != offset) continue;
      const std::uint64_t lo =
          line == firstLine ? ref.addr : line * lineBytes;
      const std::uint64_t hi =
          line == lastLine ? end : line * lineBytes + lineBytes - 1;
      sampled.push(MemRef{lo, static_cast<std::uint32_t>(hi - lo + 1),
                          ref.type});
    }
  }
  return sampled;
}

CacheStats sampleSetsStats(const CacheConfig& config, const Trace& trace,
                           std::uint32_t factor, std::uint32_t offset) {
  config.validate();
  if (factor == 1) return simulateTrace(config, trace);
  MEMX_EXPECTS(config.numSets() % factor == 0,
               "factor must divide the set count");

  const Trace sampled =
      sampleSets(trace, config.lineBytes, config.numSets(), factor,
                 offset);

  // The kept sets (offset, offset+factor, ...) become the sets of a
  // cache 1/factor the size. Compress the set bits so set s of the full
  // cache maps to set s/factor of the shrunk one while tags stay intact:
  //   line = tag * numSets + s  ->  tag * (numSets/factor) + s/factor.
  const std::uint32_t L = config.lineBytes;
  const std::uint64_t sets = config.numSets();
  const std::uint64_t shrunkSets = sets / factor;
  Trace remapped;
  for (const MemRef& ref : sampled) {
    const std::uint64_t line = ref.addr / L;
    const std::uint64_t tag = line / sets;
    const std::uint64_t set = line % sets;
    const std::uint64_t newLine = tag * shrunkSets + set / factor;
    remapped.push(MemRef{newLine * L + ref.addr % L, ref.size, ref.type});
  }

  CacheConfig shrunk = config;
  shrunk.sizeBytes = config.sizeBytes / factor;
  return simulateTrace(shrunk, remapped);
}

double estimateMissRateBySetSampling(const CacheConfig& config,
                                     const Trace& trace,
                                     std::uint32_t factor,
                                     std::uint32_t offset) {
  const CacheStats stats = sampleSetsStats(config, trace, factor, offset);
  return stats.accesses() == 0 ? 0.0 : stats.missRate();
}

}  // namespace memx
