// Trace sampling for fast approximate simulation.
//
// Set sampling (Puzak): simulate only the references that map to one in
// `factor` cache sets, against a cache shrunk by the same factor. The
// sampled miss rate estimates the full one at ~1/factor of the work —
// the standard trick for industrial-size traces.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Keep the references whose set index under (lineBytes, numSets)
/// satisfies set % factor == offset. A reference that straddles a line
/// boundary touches several sets; it is split at line granularity and
/// only the pieces landing in kept sets survive — the same per-line
/// decomposition CacheSim applies, so every line probe of the full
/// simulation lands in exactly one sample across the `factor` offsets.
/// (Classifying a straddler by its first line alone would leak probes
/// into the wrong sample or drop them entirely.)
[[nodiscard]] Trace sampleSets(const Trace& trace, std::uint32_t lineBytes,
                               std::uint32_t numSets, std::uint32_t factor,
                               std::uint32_t offset = 0);

/// Full statistics of the 1-in-`factor` set-sample simulation: the
/// sampled references remapped onto a cache shrunk by `factor` (factor
/// 1 = the full simulation). The kept sets simulate exactly as they do
/// in the full cache, so probe-based counters (lineFills, writebacks)
/// sum over the `factor` offsets to the full-simulation values.
/// `factor` must be a power of two dividing the set count.
[[nodiscard]] CacheStats sampleSetsStats(const CacheConfig& config,
                                         const Trace& trace,
                                         std::uint32_t factor,
                                         std::uint32_t offset = 0);

/// Estimate `config`'s miss rate from a 1-in-`factor` set sample.
/// `factor` must be a power of two dividing the set count.
[[nodiscard]] double estimateMissRateBySetSampling(
    const CacheConfig& config, const Trace& trace, std::uint32_t factor,
    std::uint32_t offset = 0);

}  // namespace memx
