// Trace sampling for fast approximate simulation.
//
// Set sampling (Puzak): simulate only the references that map to one in
// `factor` cache sets, against a cache shrunk by the same factor. The
// sampled miss rate estimates the full one at ~1/factor of the work —
// the standard trick for industrial-size traces.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Keep only references whose set index under (lineBytes, numSets)
/// satisfies set % factor == offset.
[[nodiscard]] Trace sampleSets(const Trace& trace, std::uint32_t lineBytes,
                               std::uint32_t numSets, std::uint32_t factor,
                               std::uint32_t offset = 0);

/// Estimate `config`'s miss rate from a 1-in-`factor` set sample.
/// `factor` must be a power of two dividing the set count.
[[nodiscard]] double estimateMissRateBySetSampling(
    const CacheConfig& config, const Trace& trace, std::uint32_t factor,
    std::uint32_t offset = 0);

}  // namespace memx
