#include "memx/cachesim/hierarchy.hpp"

#include "memx/util/assert.hpp"

namespace memx {

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2)
    : l1_(l1), l2_(l2) {
  MEMX_EXPECTS(l2.lineBytes >= l1.lineBytes,
               "L2 line size must be at least the L1 line size");
  MEMX_EXPECTS(l2.sizeBytes >= l1.sizeBytes,
               "L2 capacity must be at least the L1 capacity");
}

void CacheHierarchy::access(const MemRef& ref) {
  const AccessOutcome l1Out = l1_.access(ref);

  // Dirty L1 victims are absorbed by the (inclusive) L2.
  for (const std::uint64_t victimAddr : l1Out.evictedDirtyLines) {
    const MemRef writeback{victimAddr, l1_.config().lineBytes,
                           AccessType::Write};
    const AccessOutcome out = l2_.access(writeback);
    stats_.mainWrites += out.writebacks;
  }

  if (!l1Out.hit) {
    // Fetch the L1 line(s) through the L2.
    const MemRef fill{ref.addr, ref.size, AccessType::Read};
    const AccessOutcome l2Out = l2_.access(fill);
    stats_.mainReads += l2Out.fills;
    stats_.mainWrites += l2Out.writebacks;
  }
  stats_.l1 = l1_.stats();
  stats_.l2 = l2_.stats();
}

void CacheHierarchy::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

void CacheHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  stats_ = HierarchyStats{};
}

double HierarchyTiming::cycles(const HierarchyStats& stats) const {
  const double n = static_cast<double>(stats.l1.accesses());
  const double l1Miss = static_cast<double>(stats.l1.misses());
  const double l2Miss = static_cast<double>(stats.l2.misses());
  return n * l1HitCycles + l1Miss * l2HitCycles + l2Miss * memCycles;
}

}  // namespace memx
