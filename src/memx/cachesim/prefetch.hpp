// Sequential prefetching (Smith's one-block-lookahead, plus Jouppi-style
// tagged prefetch).
//
// The paper buys spatial locality by enlarging L, paying Em * L on every
// miss; a next-line prefetcher gets the same streaming benefit at small
// L by fetching line k+1 on a miss to (or first use of) line k. The
// `ablation_prefetch` bench compares the two levers.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "memx/cachesim/cache_sim.hpp"

namespace memx {

/// When the next line is prefetched.
enum class PrefetchPolicy : std::uint8_t {
  None,        ///< plain cache
  OnMiss,      ///< prefetch k+1 whenever k misses
  Tagged,      ///< prefetch k+1 on miss AND on first demand-hit of a
               ///< prefetched line (Gindele/Jouppi tagged prefetch)
};

/// Statistics of a prefetching run. `demand` excludes the prefetch
/// probes themselves; their traffic is reported via `prefetches`.
struct PrefetchStats {
  CacheStats demand;            ///< demand-access counters
  std::uint64_t prefetches = 0; ///< lines fetched ahead of demand
  std::uint64_t usefulPrefetches = 0;  ///< later hit by a demand access

  /// Fraction of prefetched lines that were used before eviction.
  [[nodiscard]] double accuracy() const noexcept {
    return prefetches == 0 ? 0.0
                           : static_cast<double>(usefulPrefetches) /
                                 static_cast<double>(prefetches);
  }
  /// Total memory traffic (line fills incl. prefetches per demand
  /// access).
  [[nodiscard]] double trafficPerAccess() const noexcept {
    const auto n = demand.accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(demand.lineFills + prefetches) /
                        static_cast<double>(n);
  }
};

/// A cache with a next-line prefetcher in front of it.
class PrefetchingCache {
public:
  PrefetchingCache(const CacheConfig& config, PrefetchPolicy policy);

  /// Present one demand reference.
  void access(const MemRef& ref);

  /// Run a whole trace.
  void run(const Trace& trace);

  /// Demand statistics with the prefetch probes separated out.
  [[nodiscard]] PrefetchStats stats() const;

  [[nodiscard]] PrefetchPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const CacheConfig& config() const noexcept {
    return cache_.config();
  }

private:
  void maybePrefetch(std::uint64_t lineAddr);

  CacheSim cache_;
  PrefetchPolicy policy_;
  std::uint64_t prefetches_ = 0;
  std::uint64_t useful_ = 0;
  /// Lines brought in by the prefetcher and not yet demanded.
  std::unordered_set<std::uint64_t> pendingTagged_;
};

}  // namespace memx
