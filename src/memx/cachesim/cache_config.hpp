// Cache geometry and policy description.
//
// The MemExplore sweep of the paper enumerates (cache size T, line size L,
// set associativity S) in powers of two; CacheConfig is that triple plus
// the write/replacement policies a real simulator needs.
#pragma once

#include <cstdint>
#include <string>

namespace memx {

/// What happens to writes that hit.
enum class WritePolicy : std::uint8_t {
  WriteThrough,  ///< every write also goes to main memory
  WriteBack,     ///< dirty lines written back on eviction
};

/// What happens to writes that miss.
enum class AllocatePolicy : std::uint8_t {
  WriteAllocate,    ///< fetch the line, then write it
  NoWriteAllocate,  ///< write around the cache
};

/// Victim selection within a set.
enum class ReplacementPolicy : std::uint8_t {
  LRU,
  FIFO,
  Random,
  TreePLRU,  ///< tree pseudo-LRU, the common embedded hardware choice
};

[[nodiscard]] std::string toString(WritePolicy p);
[[nodiscard]] std::string toString(AllocatePolicy p);
[[nodiscard]] std::string toString(ReplacementPolicy p);

/// A fully-specified data-cache configuration.
///
/// Invariants (checked by validate(), which every consumer calls):
///  - sizeBytes, lineBytes, associativity are powers of two,
///  - lineBytes <= sizeBytes,
///  - associativity <= sizeBytes / lineBytes (ways cannot exceed lines).
struct CacheConfig {
  std::uint32_t sizeBytes = 64;      ///< total data capacity T
  std::uint32_t lineBytes = 8;       ///< line (block) size L
  std::uint32_t associativity = 1;   ///< ways per set S (1 = direct mapped)
  WritePolicy writePolicy = WritePolicy::WriteBack;
  AllocatePolicy allocatePolicy = AllocatePolicy::WriteAllocate;
  ReplacementPolicy replacement = ReplacementPolicy::LRU;

  /// Total number of lines T / L.
  [[nodiscard]] std::uint32_t numLines() const noexcept {
    return sizeBytes / lineBytes;
  }
  /// Number of sets T / (L * S).
  [[nodiscard]] std::uint32_t numSets() const noexcept {
    return sizeBytes / (lineBytes * associativity);
  }
  /// True when every line is in one set.
  [[nodiscard]] bool isFullyAssociative() const noexcept {
    return numSets() == 1;
  }

  /// Throws memx::ContractViolation when the invariants do not hold.
  void validate() const;

  /// Short form like "C64L8S2" used in tables and logs.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] friend bool operator==(const CacheConfig&,
                                       const CacheConfig&) = default;
};

/// Parse a label of the form "C<size>L<line>[S<ways>]" (the format
/// label() produces; case-insensitive). Policies take their defaults.
/// Throws memx::ContractViolation on malformed input or invalid
/// geometry.
[[nodiscard]] CacheConfig parseCacheLabel(const std::string& label);

}  // namespace memx
