#include "memx/cachesim/write_buffer.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

void WriteBufferConfig::validate() const {
  MEMX_EXPECTS(entries >= 1, "write buffer needs at least one entry");
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");
  MEMX_EXPECTS(drainInterval >= 1, "drain interval must be positive");
}

WriteBuffer::WriteBuffer(const WriteBufferConfig& config)
    : config_(config) {
  config_.validate();
}

void WriteBuffer::tick() {
  if (++sinceDrain_ >= config_.drainInterval && !queue_.empty()) {
    queue_.pop_front();
    ++stats_.memWrites;
    sinceDrain_ = 0;
  }
}

void WriteBuffer::observe(const MemRef& ref) {
  tick();
  if (ref.type != AccessType::Write) return;

  ++stats_.writesSeen;
  const std::uint64_t line = ref.addr / config_.lineBytes;
  if (std::find(queue_.begin(), queue_.end(), line) != queue_.end()) {
    ++stats_.merged;
    return;
  }
  if (queue_.size() >= config_.entries) {
    // Stall until the head drains.
    stats_.stallCycles +=
        config_.drainInterval - std::min<std::uint64_t>(
                                    sinceDrain_, config_.drainInterval);
    queue_.pop_front();
    ++stats_.memWrites;
    sinceDrain_ = 0;
  }
  queue_.push_back(line);
}

void WriteBuffer::run(const Trace& trace) {
  for (const MemRef& ref : trace) observe(ref);
  flush();
}

void WriteBuffer::flush() {
  stats_.memWrites += queue_.size();
  queue_.clear();
  sinceDrain_ = 0;
}

}  // namespace memx
