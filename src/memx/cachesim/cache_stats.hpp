// Hit/miss/traffic counters accumulated by the cache simulator.
#pragma once

#include <cstdint>

namespace memx {

/// Access and traffic counters for one simulation run.
struct CacheStats {
  std::uint64_t reads = 0;        ///< read accesses presented
  std::uint64_t writes = 0;       ///< write accesses presented
  std::uint64_t readHits = 0;
  std::uint64_t readMisses = 0;
  std::uint64_t writeHits = 0;
  std::uint64_t writeMisses = 0;
  std::uint64_t lineFills = 0;    ///< lines fetched from main memory
  std::uint64_t writebacks = 0;   ///< dirty lines written back on eviction
  std::uint64_t memWrites = 0;    ///< word writes to memory (write-through
                                  ///< stores + no-allocate write misses)

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return reads + writes;
  }
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return readHits + writeHits;
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return readMisses + writeMisses;
  }
  /// misses / accesses; 0 on an empty run.
  [[nodiscard]] double missRate() const noexcept {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(misses()) /
                              static_cast<double>(n);
  }
  /// hits / accesses; 0 on an empty run.
  [[nodiscard]] double hitRate() const noexcept {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits()) /
                              static_cast<double>(n);
  }
  /// read misses / reads (the paper reasons about reads only).
  [[nodiscard]] double readMissRate() const noexcept {
    return reads == 0 ? 0.0 : static_cast<double>(readMisses) /
                                  static_cast<double>(reads);
  }
};

/// Field-wise difference. Every field is an additive, monotone
/// accumulator, so end-of-run minus a mid-run snapshot yields exactly
/// the statistics of the in-between region — the warmup-exclusion
/// mechanism of the streamed replay drivers. `b` must be a prior
/// snapshot of the run that produced `a`.
[[nodiscard]] inline CacheStats operator-(const CacheStats& a,
                                          const CacheStats& b) noexcept {
  CacheStats d;
  d.reads = a.reads - b.reads;
  d.writes = a.writes - b.writes;
  d.readHits = a.readHits - b.readHits;
  d.readMisses = a.readMisses - b.readMisses;
  d.writeHits = a.writeHits - b.writeHits;
  d.writeMisses = a.writeMisses - b.writeMisses;
  d.lineFills = a.lineFills - b.lineFills;
  d.writebacks = a.writebacks - b.writebacks;
  d.memWrites = a.memWrites - b.memWrites;
  return d;
}

}  // namespace memx
