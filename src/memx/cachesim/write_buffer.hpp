// Merging write buffer between the cache and main memory.
//
// The paper's energy model counts reads only, arguing reads dominate; a
// write-through cache would invalidate that without a write buffer that
// merges same-line stores. This model quantifies the merge rate and the
// stall behaviour so the ablation can support (or bound) the paper's
// simplification.
#pragma once

#include <cstdint>
#include <deque>

#include "memx/trace/trace.hpp"

namespace memx {

/// FIFO merging write buffer of `entries` line-granular slots that
/// retires one entry to memory every `drainInterval` processor accesses.
struct WriteBufferConfig {
  std::uint32_t entries = 4;
  std::uint32_t lineBytes = 8;
  std::uint32_t drainInterval = 4;

  void validate() const;
};

/// Traffic statistics of a write-buffer run.
struct WriteBufferStats {
  std::uint64_t writesSeen = 0;   ///< stores presented by the processor
  std::uint64_t merged = 0;       ///< stores absorbed into a pending line
  std::uint64_t memWrites = 0;    ///< lines actually retired to memory
  std::uint64_t stallCycles = 0;  ///< cycles stalled on a full buffer

  /// Fraction of stores that never reached memory as separate events.
  [[nodiscard]] double mergeRate() const noexcept {
    return writesSeen == 0 ? 0.0
                           : static_cast<double>(merged) /
                                 static_cast<double>(writesSeen);
  }
};

/// Simulates the buffer against the write stream of a trace (reads only
/// advance time).
class WriteBuffer {
public:
  explicit WriteBuffer(const WriteBufferConfig& config);

  /// Observe one processor access.
  void observe(const MemRef& ref);

  /// Observe a whole trace, then drain the remainder.
  void run(const Trace& trace);

  /// Retire everything still pending (end of program).
  void flush();

  [[nodiscard]] const WriteBufferStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size();
  }

private:
  void tick();

  WriteBufferConfig config_;
  std::deque<std::uint64_t> queue_;  ///< pending line addresses (FIFO)
  std::uint64_t sinceDrain_ = 0;
  WriteBufferStats stats_;
};

}  // namespace memx
