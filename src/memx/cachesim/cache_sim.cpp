#include "memx/cachesim/cache_sim.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

CacheSim::CacheSim(const CacheConfig& config, std::uint64_t rngSeed)
    : config_(config), rng_(rngSeed) {
  config_.validate();
  lines_.resize(static_cast<std::size_t>(config_.numSets()) *
                config_.associativity);
  plruBits_.assign(config_.numSets(), 0);
}

void CacheSim::plruTouch(std::uint32_t setIndex, std::size_t way) {
  if (config_.associativity < 2) return;
  std::uint32_t& bits = plruBits_[setIndex];
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = config_.associativity;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (way < mid) {
      bits |= (1u << node);  // point right, away from the touched way
      node = 2 * node + 1;
      hi = mid;
    } else {
      bits &= ~(1u << node);  // point left
      node = 2 * node + 2;
      lo = mid;
    }
  }
}

std::size_t CacheSim::plruVictim(std::uint32_t setIndex) const {
  if (config_.associativity < 2) return 0;
  const std::uint32_t bits = plruBits_[setIndex];
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = config_.associativity;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (bits & (1u << node)) {  // points right
      node = 2 * node + 2;
      lo = mid;
    } else {
      node = 2 * node + 1;
      hi = mid;
    }
  }
  return lo;
}

std::uint32_t CacheSim::setIndexOf(std::uint64_t addr) const noexcept {
  return static_cast<std::uint32_t>((addr / config_.lineBytes) %
                                    config_.numSets());
}

std::uint64_t CacheSim::tagOf(std::uint64_t addr) const noexcept {
  return addr / config_.lineBytes / config_.numSets();
}

bool CacheSim::contains(std::uint64_t addr) const {
  const std::uint32_t set = setIndexOf(addr);
  const std::uint64_t tag = tagOf(addr);
  const std::size_t base =
      static_cast<std::size_t>(set) * config_.associativity;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

std::size_t CacheSim::validLineCount() const {
  return static_cast<std::size_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid; }));
}

std::size_t CacheSim::victimWay(std::uint32_t setIndex) {
  const std::size_t base =
      static_cast<std::size_t>(setIndex) * config_.associativity;
  // Prefer an invalid way.
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    if (!lines_[base + w].valid) return w;
  }
  switch (config_.replacement) {
    case ReplacementPolicy::LRU: {
      std::size_t best = 0;
      for (std::size_t w = 1; w < config_.associativity; ++w) {
        if (lines_[base + w].lastUse < lines_[base + best].lastUse) best = w;
      }
      return best;
    }
    case ReplacementPolicy::FIFO: {
      std::size_t best = 0;
      for (std::size_t w = 1; w < config_.associativity; ++w) {
        if (lines_[base + w].filledAt < lines_[base + best].filledAt)
          best = w;
      }
      return best;
    }
    case ReplacementPolicy::Random: {
      std::uniform_int_distribution<std::size_t> dist(
          0, config_.associativity - 1);
      return dist(rng_);
    }
    case ReplacementPolicy::TreePLRU:
      return plruVictim(setIndex);
  }
  return 0;
}

bool CacheSim::probeLine(std::uint64_t lineAddr, AccessType type,
                         AccessOutcome& outcome) {
  const std::uint32_t set = setIndexOf(lineAddr);
  const std::uint64_t tag = tagOf(lineAddr);
  const std::size_t base =
      static_cast<std::size_t>(set) * config_.associativity;
  ++clock_;

  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      line.lastUse = clock_;
      plruTouch(set, w);
      if (type == AccessType::Write) {
        if (config_.writePolicy == WritePolicy::WriteBack) {
          line.dirty = true;
        } else {
          ++stats_.memWrites;
        }
      }
      return true;
    }
  }

  // Miss.
  const bool allocate = type == AccessType::Read ||
                        config_.allocatePolicy == AllocatePolicy::WriteAllocate;
  if (!allocate) {
    ++stats_.memWrites;  // write straight around the cache
    return false;
  }

  const std::size_t w = victimWay(set);
  Line& victim = lines_[base + w];
  if (victim.valid && victim.dirty) {
    ++stats_.writebacks;
    ++outcome.writebacks;
    // Reconstruct the victim's byte address from tag and set index.
    outcome.evictedDirtyLines.push_back(
        (victim.tag * config_.numSets() + set) * config_.lineBytes);
  }
  victim.valid = true;
  victim.tag = tag;
  victim.lastUse = clock_;
  victim.filledAt = clock_;
  victim.dirty = false;
  plruTouch(set, w);
  ++stats_.lineFills;
  ++outcome.fills;
  if (type == AccessType::Write) {
    if (config_.writePolicy == WritePolicy::WriteBack) {
      victim.dirty = true;
    } else {
      ++stats_.memWrites;
    }
  }
  return false;
}

AccessOutcome CacheSim::access(const MemRef& ref) {
  MEMX_EXPECTS(ref.size > 0, "access size must be positive");
  AccessOutcome outcome;
  const std::uint64_t firstLine = ref.addr / config_.lineBytes;
  const std::uint64_t lastLine =
      (ref.addr + ref.size - 1) / config_.lineBytes;
  bool allHit = true;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    allHit &= probeLine(line * config_.lineBytes, ref.type, outcome);
  }
  outcome.hit = allHit;

  if (ref.type == AccessType::Read) {
    ++stats_.reads;
    allHit ? ++stats_.readHits : ++stats_.readMisses;
  } else {
    ++stats_.writes;
    allHit ? ++stats_.writeHits : ++stats_.writeMisses;
  }
  return outcome;
}

void CacheSim::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

void CacheSim::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(plruBits_.begin(), plruBits_.end(), 0u);
  clock_ = 0;
  stats_ = CacheStats{};
}

CacheStats simulateTrace(const CacheConfig& config, const Trace& trace) {
  CacheSim sim(config);
  sim.run(trace);
  return sim.stats();
}

}  // namespace memx
