#include "memx/cachesim/cache_sim.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

CacheSim::CacheSim(const CacheConfig& config, std::uint64_t rngSeed)
    : config_(config), rng_(rngSeed) {
  config_.validate();
  // The PLRU tree over A ways has A - 1 internal nodes packed into one
  // word per set, so the policy is representable up to 64 ways; wider
  // trees would silently wrap the node shifts below, so refuse loudly.
  MEMX_EXPECTS(config_.replacement != ReplacementPolicy::TreePLRU ||
                   config_.associativity <= 64,
               "TreePLRU supports at most 64 ways per set");
  lineShift_ = log2Exact(config_.lineBytes);
  setShift_ = log2Exact(config_.numSets());
  setMask_ = config_.numSets() - 1;
  lines_.resize(static_cast<std::size_t>(config_.numSets()) *
                config_.associativity);
  plruBits_.assign(config_.numSets(), 0);
}

void CacheSim::plruTouch(std::uint32_t setIndex, std::size_t way) {
  // The tree is only consulted by plruVictim, so policies other than
  // TreePLRU need not maintain it.
  if (config_.replacement != ReplacementPolicy::TreePLRU ||
      config_.associativity < 2) {
    return;
  }
  std::uint64_t& bits = plruBits_[setIndex];
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = config_.associativity;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (way < mid) {
      bits |= (std::uint64_t{1} << node);  // point right, away from
      node = 2 * node + 1;                 // the touched way
      hi = mid;
    } else {
      bits &= ~(std::uint64_t{1} << node);  // point left
      node = 2 * node + 2;
      lo = mid;
    }
  }
}

std::size_t CacheSim::plruVictim(std::uint32_t setIndex) const {
  if (config_.associativity < 2) return 0;
  const std::uint64_t bits = plruBits_[setIndex];
  std::size_t node = 0;
  std::size_t lo = 0;
  std::size_t hi = config_.associativity;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (bits & (std::uint64_t{1} << node)) {  // points right
      node = 2 * node + 2;
      lo = mid;
    } else {
      node = 2 * node + 1;
      hi = mid;
    }
  }
  return lo;
}

std::uint32_t CacheSim::setIndexOf(std::uint64_t addr) const noexcept {
  return static_cast<std::uint32_t>((addr >> lineShift_) & setMask_);
}

std::uint64_t CacheSim::tagOf(std::uint64_t addr) const noexcept {
  return addr >> lineShift_ >> setShift_;
}

bool CacheSim::contains(std::uint64_t addr) const {
  const std::uint32_t set = setIndexOf(addr);
  const std::uint64_t tag = tagOf(addr);
  const std::size_t base =
      static_cast<std::size_t>(set) * config_.associativity;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

std::size_t CacheSim::validLineCount() const {
  return static_cast<std::size_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid; }));
}

std::size_t CacheSim::victimWay(std::uint32_t setIndex) {
  const std::size_t base =
      static_cast<std::size_t>(setIndex) * config_.associativity;
  switch (config_.replacement) {
    case ReplacementPolicy::LRU:
    case ReplacementPolicy::FIFO: {
      // One scan serves both: prefer the first invalid way, else the
      // oldest stamp (last use for LRU, fill time for FIFO).
      std::size_t best = 0;
      std::uint64_t bestStamp = ~std::uint64_t{0};
      for (std::size_t w = 0; w < config_.associativity; ++w) {
        const Line& line = lines_[base + w];
        if (!line.valid) return w;
        if (line.stamp < bestStamp) {
          bestStamp = line.stamp;
          best = w;
        }
      }
      return best;
    }
    case ReplacementPolicy::Random: {
      for (std::size_t w = 0; w < config_.associativity; ++w) {
        if (!lines_[base + w].valid) return w;
      }
      std::uniform_int_distribution<std::size_t> dist(
          0, config_.associativity - 1);
      return dist(rng_);
    }
    case ReplacementPolicy::TreePLRU: {
      for (std::size_t w = 0; w < config_.associativity; ++w) {
        if (!lines_[base + w].valid) return w;
      }
      return plruVictim(setIndex);
    }
  }
  return 0;
}

bool CacheSim::probeLineIndex(std::uint64_t lineIndex, AccessType type,
                              AccessOutcome* outcome) {
  const std::uint32_t set = static_cast<std::uint32_t>(lineIndex & setMask_);
  const std::uint64_t tag = lineIndex >> setShift_;

  if (config_.associativity == 1) {
    // Direct-mapped: way 0 of the set is the only candidate, every
    // replacement policy degenerates to it, and the stamp/clock are
    // never read. Same statistics as the set-associative path below.
    Line& line = lines_[set];
    if (line.valid && line.tag == tag) {
      if (type == AccessType::Write) {
        if (config_.writePolicy == WritePolicy::WriteBack) {
          line.dirty = true;
        } else {
          ++stats_.memWrites;
        }
      }
      return true;
    }
    if (!isReadLike(type) &&
        config_.allocatePolicy != AllocatePolicy::WriteAllocate) {
      ++stats_.memWrites;
      return false;
    }
    if (line.valid && line.dirty) {
      ++stats_.writebacks;
      if (outcome != nullptr) {
        ++outcome->writebacks;
        outcome->evictedDirtyLines.push_back(
            ((line.tag << setShift_) | set) << lineShift_);
      }
    }
    line.valid = true;
    line.tag = tag;
    line.dirty = false;
    ++stats_.lineFills;
    if (outcome != nullptr) ++outcome->fills;
    if (type == AccessType::Write) {
      if (config_.writePolicy == WritePolicy::WriteBack) {
        line.dirty = true;
      } else {
        ++stats_.memWrites;
      }
    }
    return false;
  }

  const std::size_t base =
      static_cast<std::size_t>(set) * config_.associativity;
  ++clock_;

  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) {
      if (config_.replacement == ReplacementPolicy::LRU) line.stamp = clock_;
      plruTouch(set, w);
      if (type == AccessType::Write) {
        if (config_.writePolicy == WritePolicy::WriteBack) {
          line.dirty = true;
        } else {
          ++stats_.memWrites;
        }
      }
      return true;
    }
  }

  // Miss.
  const bool allocate = isReadLike(type) ||
                        config_.allocatePolicy == AllocatePolicy::WriteAllocate;
  if (!allocate) {
    ++stats_.memWrites;  // write straight around the cache
    return false;
  }

  const std::size_t w = victimWay(set);
  Line& victim = lines_[base + w];
  if (victim.valid && victim.dirty) {
    ++stats_.writebacks;
    if (outcome != nullptr) {
      ++outcome->writebacks;
      // Reconstruct the victim's byte address from tag and set index.
      outcome->evictedDirtyLines.push_back(
          ((victim.tag << setShift_) | set) << lineShift_);
    }
  }
  victim.valid = true;
  victim.tag = tag;
  victim.stamp = clock_;
  victim.dirty = false;
  plruTouch(set, w);
  ++stats_.lineFills;
  if (outcome != nullptr) ++outcome->fills;
  if (type == AccessType::Write) {
    if (config_.writePolicy == WritePolicy::WriteBack) {
      victim.dirty = true;
    } else {
      ++stats_.memWrites;
    }
  }
  return false;
}

AccessOutcome CacheSim::access(const MemRef& ref) {
  MEMX_EXPECTS(ref.size > 0, "access size must be positive");
  return accessLines(ref.addr >> lineShift_,
                     (ref.addr + ref.size - 1) >> lineShift_, ref.type);
}

AccessOutcome CacheSim::accessLines(std::uint64_t firstLine,
                                    std::uint64_t lastLine,
                                    AccessType type) {
  AccessOutcome outcome;
  bool allHit = true;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    allHit &= probeLineIndex(line, type, &outcome);
  }
  outcome.hit = allHit;
  countAccess(allHit, type);
  return outcome;
}

bool CacheSim::accessLinesFast(std::uint64_t firstLine,
                               std::uint64_t lastLine, AccessType type) {
  bool allHit = true;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    allHit &= probeLineIndex(line, type, nullptr);
  }
  countAccess(allHit, type);
  return allHit;
}

void CacheSim::countAccess(bool allHit, AccessType type) {
  if (isReadLike(type)) {
    ++stats_.reads;
    allHit ? ++stats_.readHits : ++stats_.readMisses;
  } else {
    ++stats_.writes;
    allHit ? ++stats_.writeHits : ++stats_.writeMisses;
  }
}

void CacheSim::replaySpans(const LineSpan* spans, std::size_t count) {
  // Accumulate the per-access counters in locals and flush once: the
  // counts are identical to calling accessLinesFast per span, without
  // read-modify-writing six statistics fields on every access.
  std::uint64_t reads = 0;
  std::uint64_t readHits = 0;
  std::uint64_t writes = 0;
  std::uint64_t writeHits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    bool allHit = true;
    for (std::uint64_t line = spans[i].first; line <= spans[i].last;
         ++line) {
      allHit &= probeLineIndex(line, spans[i].type, nullptr);
    }
    if (isReadLike(spans[i].type)) {
      ++reads;
      readHits += allHit ? 1 : 0;
    } else {
      ++writes;
      writeHits += allHit ? 1 : 0;
    }
  }
  stats_.reads += reads;
  stats_.readHits += readHits;
  stats_.readMisses += reads - readHits;
  stats_.writes += writes;
  stats_.writeHits += writeHits;
  stats_.writeMisses += writes - writeHits;
}

void CacheSim::run(const Trace& trace) {
  for (const MemRef& ref : trace) {
    MEMX_EXPECTS(ref.size > 0, "access size must be positive");
    accessLinesFast(ref.addr >> lineShift_,
                    (ref.addr + ref.size - 1) >> lineShift_, ref.type);
  }
}

void CacheSim::reset() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  std::fill(plruBits_.begin(), plruBits_.end(), 0u);
  clock_ = 0;
  stats_ = CacheStats{};
}

CacheStats simulateTrace(const CacheConfig& config, const Trace& trace) {
  CacheSim sim(config);
  sim.run(trace);
  return sim.stats();
}

}  // namespace memx
