// One-pass multi-configuration cache simulation.
//
// The MemExplore sweep evaluates many (T, L, S) configurations against the
// SAME reference stream. MultiCacheSim drives a bank of CacheSim instances
// from one copy of that stream. The line-address decomposition of a
// reference (first/last line index) depends only on the line size, so
// run() computes it once per distinct line size in the bank and replays
// the resulting spans member by member — a blocked schedule that keeps
// each member's tag array cache-hot for the whole trace instead of
// touching the bank's combined footprint on every reference. access()
// offers the per-reference interleaving for streaming use.
//
// Statistics are bit-identical to running each CacheSim independently:
// members receive exactly the same probe sequence they would see alone,
// and members are mutually independent, so the two schedules agree.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_sim.hpp"

namespace memx {

/// A bank of independent single-level caches driven in one trace pass.
class MultiCacheSim {
public:
  /// Constructs one CacheSim per config (each seeded with `rngSeed`, the
  /// same default a standalone simulateTrace uses). Throws on an invalid
  /// config or an empty bank.
  explicit MultiCacheSim(const std::vector<CacheConfig>& configs,
                         std::uint64_t rngSeed = 1);

  /// Present one reference to every member.
  void access(const MemRef& ref);

  /// Run a whole trace through the bank (one pass over `trace`).
  void run(const Trace& trace);

  /// Drain `source` through the bank in chunks of `chunkRefs`
  /// references, so out-of-core traces replay in bounded memory. Each
  /// chunk uses the same blocked schedule as run(Trace) — members are
  /// independent, so the result is bit-identical to materializing the
  /// stream first. Callable repeatedly; cache state persists, which is
  /// how the streamed drivers split warmup from counted references.
  void run(TraceSource& source,
           std::size_t chunkRefs = kDefaultTraceChunkRefs);

  /// Drop all contents and statistics (configurations are kept).
  void reset();

  [[nodiscard]] std::size_t size() const noexcept { return sims_.size(); }
  [[nodiscard]] const CacheConfig& config(std::size_t i) const {
    return sims_[i].config();
  }
  [[nodiscard]] const CacheStats& stats(std::size_t i) const {
    return sims_[i].stats();
  }
  [[nodiscard]] const CacheSim& sim(std::size_t i) const { return sims_[i]; }

private:
  /// Members sharing one line size, so one access decomposition serves
  /// all of them.
  struct LineGroup {
    std::uint32_t lineBytes = 0;
    unsigned lineShift = 0;            ///< log2(lineBytes)
    std::vector<std::size_t> members;  ///< indices into sims_
  };

  std::vector<CacheSim> sims_;
  std::vector<LineGroup> groups_;
};

/// Convenience: simulate `trace` once against every config, returning the
/// per-config statistics in input order. Equivalent to calling
/// simulateTrace per config, in a single trace pass.
[[nodiscard]] std::vector<CacheStats> simulateTraceMulti(
    const std::vector<CacheConfig>& configs, const Trace& trace);

}  // namespace memx
