#include "memx/cachesim/cache_config.hpp"

#include <cctype>
#include <sstream>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

std::string toString(WritePolicy p) {
  return p == WritePolicy::WriteThrough ? "write-through" : "write-back";
}

std::string toString(AllocatePolicy p) {
  return p == AllocatePolicy::WriteAllocate ? "write-allocate"
                                            : "no-write-allocate";
}

std::string toString(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::LRU:
      return "LRU";
    case ReplacementPolicy::FIFO:
      return "FIFO";
    case ReplacementPolicy::Random:
      return "random";
    case ReplacementPolicy::TreePLRU:
      return "tree-PLRU";
  }
  return "?";
}

void CacheConfig::validate() const {
  MEMX_EXPECTS(isPow2(sizeBytes), "cache size must be a power of two");
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");
  MEMX_EXPECTS(isPow2(associativity),
               "associativity must be a power of two");
  MEMX_EXPECTS(lineBytes <= sizeBytes,
               "line size cannot exceed cache size");
  MEMX_EXPECTS(associativity <= sizeBytes / lineBytes,
               "associativity cannot exceed the number of lines");
}

std::string CacheConfig::label() const {
  std::ostringstream os;
  os << 'C' << sizeBytes << 'L' << lineBytes;
  if (associativity > 1) os << 'S' << associativity;
  return os.str();
}

CacheConfig parseCacheLabel(const std::string& label) {
  CacheConfig config;
  std::size_t pos = 0;
  auto expectTag = [&](char tag) {
    MEMX_EXPECTS(pos < label.size() &&
                     (label[pos] == tag || label[pos] == tag + 32),
                 std::string("expected '") + tag + "' in cache label '" +
                     label + "'");
    ++pos;
  };
  auto readNumber = [&]() -> std::uint32_t {
    MEMX_EXPECTS(pos < label.size() && std::isdigit(label[pos]) != 0,
                 "expected a number in cache label '" + label + "'");
    std::uint64_t v = 0;
    while (pos < label.size() && std::isdigit(label[pos]) != 0) {
      v = v * 10 + static_cast<std::uint64_t>(label[pos] - '0');
      MEMX_EXPECTS(v <= 0xFFFFFFFFull,
                   "number too large in cache label '" + label + "'");
      ++pos;
    }
    return static_cast<std::uint32_t>(v);
  };

  expectTag('C');
  config.sizeBytes = readNumber();
  expectTag('L');
  config.lineBytes = readNumber();
  if (pos < label.size()) {
    expectTag('S');
    config.associativity = readNumber();
  }
  MEMX_EXPECTS(pos == label.size(),
               "trailing characters in cache label '" + label + "'");
  config.validate();
  return config;
}

}  // namespace memx
