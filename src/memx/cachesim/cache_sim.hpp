// Trace-driven set-associative cache simulator.
//
// This is the Dinero-class substrate the paper names as the alternative to
// its closed-form expressions: a functional (contents-free) simulator that
// tracks tags, dirtiness and replacement state, and reports hit/miss and
// traffic counts for an arbitrary reference stream.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Outcome of presenting one reference to the cache.
struct AccessOutcome {
  bool hit = true;           ///< whole access was a hit (all lines touched)
  std::uint32_t fills = 0;   ///< line fills this access caused
  std::uint32_t writebacks = 0;  ///< dirty evictions this access caused
  /// Byte addresses of the dirty lines evicted by this access (size ==
  /// writebacks); lets a next level absorb the write-back traffic.
  std::vector<std::uint64_t> evictedDirtyLines;
};

/// A reference pre-decomposed into its line span under some line size
/// (first/last are line indices). Lets one decomposition of a trace be
/// replayed against every cache sharing that line size.
struct LineSpan {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  AccessType type = AccessType::Read;
};

/// A single-level data cache.
///
/// Accesses wider than a line, or straddling a line boundary, are split
/// into per-line probes; the access counts as a miss if any probe misses.
class CacheSim {
public:
  /// Constructs an empty (all-invalid) cache. Throws on invalid config.
  explicit CacheSim(const CacheConfig& config, std::uint64_t rngSeed = 1);

  /// Present one reference; updates state and statistics.
  AccessOutcome access(const MemRef& ref);

  /// Present one reference whose line span has already been computed
  /// (firstLine/lastLine are line indices, i.e. addr / lineBytes). This
  /// is the hook MultiCacheSim uses to decompose an access once per
  /// distinct line size and share the result across a config bank.
  AccessOutcome accessLines(std::uint64_t firstLine, std::uint64_t lastLine,
                            AccessType type);

  /// Statistics-only variant of accessLines: identical state and counter
  /// updates, but skips assembling the per-access AccessOutcome (whose
  /// evicted-line list only matters to multi-level consumers). The sweep
  /// hot paths use this. Returns true when the whole access hit.
  bool accessLinesFast(std::uint64_t firstLine, std::uint64_t lastLine,
                       AccessType type);

  /// Present a whole pre-decomposed trace, statistics-only. Equivalent to
  /// calling accessLinesFast once per span, in order; a single bulk call
  /// so the per-span probe inlines into one tight loop.
  void replaySpans(const LineSpan* spans, std::size_t count);

  /// Run a whole trace through the cache.
  void run(const Trace& trace);

  /// Drop all contents and statistics (configuration is kept).
  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// True when `addr`'s line is currently resident (no state change).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Number of currently valid lines (test/debug aid).
  [[nodiscard]] std::size_t validLineCount() const;

  /// Set index for a byte address under this geometry.
  [[nodiscard]] std::uint32_t setIndexOf(std::uint64_t addr) const noexcept;
  /// Tag for a byte address under this geometry.
  [[nodiscard]] std::uint64_t tagOf(std::uint64_t addr) const noexcept;

private:
  struct Line {
    std::uint64_t tag = 0;
    /// Replacement stamp. LRU reads it as last-use time (refreshed on
    /// every touch); FIFO reads it as fill time (written only on fill);
    /// Random and TreePLRU never read it. One field serves both, which
    /// keeps the line small — the set scan is the simulator's hot loop.
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  /// Probe one line-sized piece of an access, keyed by line index
  /// (addr >> lineShift_). Returns true on hit. `outcome` may be null to
  /// skip per-access outcome bookkeeping (statistics and cache state
  /// update identically either way).
  bool probeLineIndex(std::uint64_t lineIndex, AccessType type,
                      AccessOutcome* outcome);
  /// Shared tail of accessLines/accessLinesFast: per-access counters.
  void countAccess(bool allHit, AccessType type);
  [[nodiscard]] std::size_t victimWay(std::uint32_t setIndex);

  /// Point the set's PLRU tree away from the just-touched way.
  void plruTouch(std::uint32_t setIndex, std::size_t way);
  /// Way the set's PLRU tree currently points at.
  [[nodiscard]] std::size_t plruVictim(std::uint32_t setIndex) const;

  CacheConfig config_;
  // Geometry is all powers of two (validated), so the address splits
  // reduce to shifts and masks precomputed here.
  unsigned lineShift_ = 0;   ///< log2(lineBytes)
  unsigned setShift_ = 0;    ///< log2(numSets)
  std::uint64_t setMask_ = 0;  ///< numSets - 1
  std::vector<Line> lines_;  ///< numSets * associativity, set-major
  std::vector<std::uint64_t> plruBits_;  ///< one tree per set (<= 64 ways)
  std::uint64_t clock_ = 0;
  CacheStats stats_;
  std::mt19937_64 rng_;
};

/// Convenience: simulate `trace` on a fresh cache, return the statistics.
[[nodiscard]] CacheStats simulateTrace(const CacheConfig& config,
                                       const Trace& trace);

}  // namespace memx
