#include "memx/cachesim/bus_monitor.hpp"

#include "memx/util/bits.hpp"

namespace memx {

void BusMonitor::observe(const MemRef& ref) {
  const std::uint64_t bus = encoding_ == AddressEncoding::Gray
                                ? grayEncode(ref.addr)
                                : ref.addr;
  if (primed_) {
    stats_.addrBitSwitches += hammingDistance(lastBusValue_, bus);
  }
  lastBusValue_ = bus;
  primed_ = true;
  ++stats_.accesses;
}

void BusMonitor::observe(const Trace& trace) {
  for (const MemRef& ref : trace) observe(ref);
}

double measureAddrActivity(const Trace& trace, AddressEncoding encoding) {
  BusMonitor monitor(encoding);
  monitor.observe(trace);
  return monitor.stats().addrSwitchesPerAccess();
}

}  // namespace memx
