// 3C miss classification (compulsory / capacity / conflict).
//
// The paper's off-chip assignment (Section 4.1) targets *conflict* misses
// specifically; this shadow-simulation classifier lets the benches and the
// tests show that the assignment removes exactly that category.
//
// Classification follows Hill's standard definition:
//  - compulsory: the line was never referenced before (misses even in an
//    infinite cache),
//  - capacity: misses in a fully-associative LRU cache of equal capacity,
//  - conflict: everything else (hits fully-associative, misses set-assoc).
#pragma once

#include <cstdint>
#include <unordered_set>

#include "memx/cachesim/cache_sim.hpp"

namespace memx {

/// Per-category miss counts.
struct MissBreakdown {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;

  [[nodiscard]] std::uint64_t misses() const noexcept {
    return compulsory + capacity + conflict;
  }
  [[nodiscard]] double conflictRate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(conflict) /
                                     static_cast<double>(accesses);
  }
  [[nodiscard]] double missRate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses()) /
                                     static_cast<double>(accesses);
  }
};

/// Runs the target cache and a fully-associative LRU shadow of the same
/// capacity side by side, plus an infinite-cache seen-set.
class MissClassifier {
public:
  /// Throws on invalid config.
  explicit MissClassifier(const CacheConfig& config);

  /// Present one reference to both caches and classify the outcome.
  void access(const MemRef& ref);

  /// Classify a whole trace.
  void run(const Trace& trace);

  [[nodiscard]] const MissBreakdown& breakdown() const noexcept {
    return breakdown_;
  }
  /// Statistics of the real (set-associative) cache.
  [[nodiscard]] const CacheStats& targetStats() const noexcept {
    return target_.stats();
  }

private:
  CacheSim target_;
  CacheSim fullyAssoc_;
  std::unordered_set<std::uint64_t> seenLines_;
  MissBreakdown breakdown_;
};

/// Convenience wrapper: classify all misses of `trace` under `config`.
[[nodiscard]] MissBreakdown classifyMisses(const CacheConfig& config,
                                           const Trace& trace);

}  // namespace memx
