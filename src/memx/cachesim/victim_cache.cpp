#include "memx/cachesim/victim_cache.hpp"

#include "memx/util/assert.hpp"

namespace memx {

VictimCache::VictimCache(const CacheConfig& config,
                         std::uint32_t victimEntries)
    : config_(config) {
  config_.validate();
  MEMX_EXPECTS(config_.associativity == 1,
               "victim caches extend direct-mapped caches");
  MEMX_EXPECTS(victimEntries >= 1,
               "victim buffer needs at least one entry");
  lines_.resize(config_.numLines());
  victim_.resize(victimEntries);
}

void VictimCache::probeLine(std::uint64_t lineAddr, AccessType type) {
  ++clock_;
  const std::uint64_t lineIndex = lineAddr / config_.lineBytes;
  const std::uint32_t set =
      static_cast<std::uint32_t>(lineIndex % config_.numLines());
  const std::uint64_t tag = lineIndex / config_.numLines();

  const bool isRead = isReadLike(type);
  isRead ? ++stats_.main.reads : ++stats_.main.writes;

  MainLine& line = lines_[set];
  if (line.valid && line.tag == tag) {
    isRead ? ++stats_.main.readHits : ++stats_.main.writeHits;
    return;
  }
  isRead ? ++stats_.main.readMisses : ++stats_.main.writeMisses;

  // Probe the victim buffer.
  const std::uint64_t alignedAddr = lineIndex * config_.lineBytes;
  for (VictimLine& v : victim_) {
    if (v.valid && v.lineAddr == alignedAddr) {
      // Swap: rescued line moves into the main cache; the displaced
      // main line takes the buffer slot.
      ++stats_.victimHits;
      const bool hadLine = line.valid;
      const std::uint64_t displaced =
          (line.tag * config_.numLines() + set) * config_.lineBytes;
      line.valid = true;
      line.tag = tag;
      if (hadLine) {
        v.lineAddr = displaced;
        v.lastUse = clock_;
      } else {
        v.valid = false;
      }
      return;
    }
  }

  // Miss everywhere: fetch from memory, push the displaced line into
  // the buffer (LRU slot).
  ++stats_.victimMisses;
  ++stats_.main.lineFills;
  if (line.valid) {
    VictimLine* lru = &victim_.front();
    for (VictimLine& v : victim_) {
      if (!v.valid) {
        lru = &v;
        break;
      }
      if (v.lastUse < lru->lastUse) lru = &v;
    }
    lru->valid = true;
    lru->lineAddr =
        (line.tag * config_.numLines() + set) * config_.lineBytes;
    lru->lastUse = clock_;
  }
  line.valid = true;
  line.tag = tag;
}

void VictimCache::access(const MemRef& ref) {
  MEMX_EXPECTS(ref.size > 0, "access size must be positive");
  const std::uint64_t firstLine = ref.addr / config_.lineBytes;
  const std::uint64_t lastLine =
      (ref.addr + ref.size - 1) / config_.lineBytes;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    probeLine(line * config_.lineBytes, ref.type);
  }
}

void VictimCache::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

}  // namespace memx
