// Two-level cache hierarchy.
//
// The paper explores a single on-chip data cache against off-chip SRAM;
// a natural extension (and a common embedded configuration by the early
// 2000s) adds an L2 between them. This module simulates L1 -> L2 ->
// main memory inclusively: L1 misses probe the L2, L2 misses fill both,
// and dirty L1 victims are written back into the L2.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_sim.hpp"

namespace memx {

/// Per-level and end-to-end statistics of a hierarchy run.
struct HierarchyStats {
  CacheStats l1;
  CacheStats l2;
  std::uint64_t mainReads = 0;   ///< line fills from main memory
  std::uint64_t mainWrites = 0;  ///< dirty L2 evictions to main memory

  /// Fraction of processor accesses that leave the chip.
  [[nodiscard]] double globalMissRate() const noexcept {
    const auto n = l1.accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(l2.misses()) /
                        static_cast<double>(n);
  }
  /// L2 hit rate among L1 misses (local miss rate complement).
  [[nodiscard]] double l2LocalMissRate() const noexcept {
    return l2.missRate();
  }
};

/// An L1 + L2 data-cache stack. L2 line size must be >= L1 line size and
/// L2 capacity >= L1 capacity (inclusive hierarchy).
class CacheHierarchy {
public:
  /// Throws when either config is invalid or the inclusion constraints
  /// are violated.
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2);

  /// Present one processor reference.
  void access(const MemRef& ref);

  /// Run a whole trace.
  void run(const Trace& trace);

  /// Drop contents and statistics.
  void reset();

  [[nodiscard]] const HierarchyStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const CacheConfig& l1Config() const noexcept {
    return l1_.config();
  }
  [[nodiscard]] const CacheConfig& l2Config() const noexcept {
    return l2_.config();
  }

private:
  CacheSim l1_;
  CacheSim l2_;
  HierarchyStats stats_;
};

/// Cycle model for a two-level stack: per-access cycles
///   hit(L1) + missL1 * (l2HitCycles) + missL2 * (memCycles).
struct HierarchyTiming {
  double l1HitCycles = 1.0;
  double l2HitCycles = 8.0;   ///< additional cycles on an L1 miss, L2 hit
  double memCycles = 40.0;    ///< additional cycles on an L2 miss

  [[nodiscard]] double cycles(const HierarchyStats& stats) const;
};

}  // namespace memx
