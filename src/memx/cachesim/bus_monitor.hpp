// Address/data bus switching-activity monitor.
//
// The paper's E_dec and E_io terms are driven by the number of bit switches
// on the address and data buses per access. The address bus is assumed
// Gray-coded (Section 2.3), so the monitor measures Hamming distance
// between consecutive Gray-encoded addresses. Data-bus activity is not
// observable in a contents-free simulation; the paper assumes a constant
// activity factor (0.5), which the monitor exposes as `assumedDataActivity`.
#pragma once

#include <cstdint>

#include "memx/trace/trace.hpp"

namespace memx {

/// How addresses are encoded on the address bus.
enum class AddressEncoding : std::uint8_t {
  Gray,    ///< reflected-binary, sequential addresses toggle one wire
  Binary,  ///< plain binary (ablation baseline)
};

/// Accumulated bus-activity statistics.
struct BusStats {
  std::uint64_t accesses = 0;
  std::uint64_t addrBitSwitches = 0;  ///< total address-bus wire toggles

  /// Average address-bus bit switches per access (the paper's Add_bs).
  [[nodiscard]] double addrSwitchesPerAccess() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(addrBitSwitches) /
                                     static_cast<double>(accesses);
  }
};

/// Observes a reference stream and accumulates bus switching counts.
class BusMonitor {
public:
  explicit BusMonitor(AddressEncoding encoding = AddressEncoding::Gray)
      : encoding_(encoding) {}

  /// Observe one reference (order matters: switching is between
  /// consecutive bus values).
  void observe(const MemRef& ref);

  /// Observe a whole trace.
  void observe(const Trace& trace);

  [[nodiscard]] const BusStats& stats() const noexcept { return stats_; }
  [[nodiscard]] AddressEncoding encoding() const noexcept {
    return encoding_;
  }

private:
  AddressEncoding encoding_;
  BusStats stats_;
  std::uint64_t lastBusValue_ = 0;
  bool primed_ = false;
};

/// Average address-bus switches/access of a trace under `encoding`.
[[nodiscard]] double measureAddrActivity(
    const Trace& trace, AddressEncoding encoding = AddressEncoding::Gray);

}  // namespace memx
