// Direct-mapped cache with a small fully-associative victim buffer
// (Jouppi 1990).
//
// The paper removes conflict misses in software (Section-4.1 data
// placement); a victim cache is the classic hardware answer to the same
// problem. The `ext_victim_cache` bench pits the two against each other
// on the same workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Statistics of a victim-cache run.
struct VictimStats {
  CacheStats main;              ///< the direct-mapped cache's counters
  std::uint64_t victimHits = 0;  ///< misses rescued by the victim buffer
  std::uint64_t victimMisses = 0;  ///< misses that went to memory

  /// Miss rate after victim-buffer rescue.
  [[nodiscard]] double effectiveMissRate() const noexcept {
    const auto n = main.accesses();
    return n == 0 ? 0.0
                  : static_cast<double>(victimMisses) /
                        static_cast<double>(n);
  }
  /// Fraction of direct-mapped misses the buffer rescued.
  [[nodiscard]] double rescueRate() const noexcept {
    const auto m = victimHits + victimMisses;
    return m == 0 ? 0.0
                  : static_cast<double>(victimHits) /
                        static_cast<double>(m);
  }
};

/// A direct-mapped cache backed by an `entries`-line fully-associative
/// LRU victim buffer. On a main-cache miss the buffer is probed; a hit
/// swaps the line back, a miss fetches from memory and pushes the
/// evicted line into the buffer.
class VictimCache {
public:
  /// `config` must be direct-mapped; `victimEntries` >= 1.
  VictimCache(const CacheConfig& config, std::uint32_t victimEntries);

  /// Present one reference (reads and writes probe identically; the
  /// model is traffic-oriented like the paper's).
  void access(const MemRef& ref);

  /// Run a whole trace.
  void run(const Trace& trace);

  [[nodiscard]] const VictimStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint32_t victimEntries() const noexcept {
    return static_cast<std::uint32_t>(victim_.size());
  }

private:
  struct MainLine {
    std::uint64_t tag = 0;
    bool valid = false;
  };
  struct VictimLine {
    std::uint64_t lineAddr = 0;
    std::uint64_t lastUse = 0;
    bool valid = false;
  };

  void probeLine(std::uint64_t lineAddr, AccessType type);

  CacheConfig config_;
  std::vector<MainLine> lines_;
  std::vector<VictimLine> victim_;
  std::uint64_t clock_ = 0;
  VictimStats stats_;
};

}  // namespace memx
