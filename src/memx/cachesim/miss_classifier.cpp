#include "memx/cachesim/miss_classifier.hpp"

namespace memx {

namespace {
CacheConfig fullyAssociativeTwin(CacheConfig config) {
  config.associativity = config.numLines();
  config.replacement = ReplacementPolicy::LRU;
  return config;
}
}  // namespace

MissClassifier::MissClassifier(const CacheConfig& config)
    : target_(config), fullyAssoc_(fullyAssociativeTwin(config)) {}

void MissClassifier::access(const MemRef& ref) {
  const AccessOutcome real = target_.access(ref);
  const AccessOutcome shadow = fullyAssoc_.access(ref);

  const std::uint64_t firstLine =
      ref.addr / target_.config().lineBytes;
  const std::uint64_t lastLine =
      (ref.addr + ref.size - 1) / target_.config().lineBytes;
  bool allSeen = true;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    allSeen &= !seenLines_.insert(line).second;
  }

  ++breakdown_.accesses;
  if (real.hit) {
    ++breakdown_.hits;
  } else if (!allSeen) {
    ++breakdown_.compulsory;
  } else if (!shadow.hit) {
    ++breakdown_.capacity;
  } else {
    ++breakdown_.conflict;
  }
}

void MissClassifier::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

MissBreakdown classifyMisses(const CacheConfig& config, const Trace& trace) {
  MissClassifier classifier(config);
  classifier.run(trace);
  return classifier.breakdown();
}

}  // namespace memx
