#include "memx/trace/gzip_stream.hpp"

#include <cstring>
#include <streambuf>
#include <string>
#include <vector>

#include "memx/util/assert.hpp"

#if defined(MEMX_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace memx {

#if defined(MEMX_HAVE_ZLIB)

bool gzipSupported() noexcept { return true; }

namespace detail {

namespace {

[[noreturn]] void throwZlib(const char* stage, int rc, const z_stream& zs) {
  std::string msg = "gzip stream: ";
  msg += stage;
  msg += " failed (zlib rc ";
  msg += std::to_string(rc);
  if (zs.msg != nullptr) {
    msg += ": ";
    msg += zs.msg;
  }
  msg += ")";
  throw ContractViolation(msg);
}

}  // namespace

/// Inflating streambuf. Pulls compressed bytes from `raw` into in_,
/// inflates into the get area out_; both buffers are fixed-size, so
/// memory is O(bufBytes) regardless of stream length. windowBits
/// 15 + 32 enables zlib/gzip header auto-detection; a clean Z_STREAM_END
/// followed by more input is treated as a concatenated gzip member and
/// the inflater is reset, matching `gzip -d` semantics.
class GzipInBuf final : public std::streambuf {
public:
  GzipInBuf(std::istream& raw, std::size_t bufBytes)
      : raw_(&raw), in_(bufBytes), out_(bufBytes) {
    MEMX_EXPECTS(bufBytes > 0, "gzip buffer size must be positive");
    std::memset(&zs_, 0, sizeof(zs_));
    const int rc = inflateInit2(&zs_, 15 + 32);
    if (rc != Z_OK) throwZlib("inflateInit2", rc, zs_);
    live_ = true;
  }

  ~GzipInBuf() override {
    if (live_) inflateEnd(&zs_);
  }

  GzipInBuf(const GzipInBuf&) = delete;
  GzipInBuf& operator=(const GzipInBuf&) = delete;

  [[nodiscard]] std::uint64_t compressedBytesRead() const noexcept {
    return compressedBytes_;
  }

protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    if (finished_) return traits_type::eof();

    std::size_t produced = 0;
    while (produced == 0) {
      if (zs_.avail_in == 0 && !rawEof_) refill();

      zs_.next_out = reinterpret_cast<Bytef*>(out_.data());
      zs_.avail_out = static_cast<uInt>(out_.size());
      const int rc = inflate(&zs_, Z_NO_FLUSH);
      produced = out_.size() - zs_.avail_out;

      if (rc == Z_STREAM_END) {
        // A member ended exactly at the input buffer boundary: look at
        // the raw stream before deciding between end-of-stream and a
        // concatenated member.
        if (zs_.avail_in == 0 && !rawEof_) refill();
        if (zs_.avail_in == 0) {
          finished_ = true;
          if (produced == 0) return traits_type::eof();
          break;
        }
        // Bytes remain past a complete member: a concatenated gzip
        // file. Restart the inflater on the next member.
        const int rrc = inflateReset2(&zs_, 15 + 32);
        if (rrc != Z_OK) throwZlib("inflateReset2", rrc, zs_);
        if (produced > 0) break;
        continue;
      }
      if (rc == Z_BUF_ERROR && produced == 0) {
        // Needs more input but the source is dry: truncated stream.
        MEMX_EXPECTS(!rawEof_, "gzip stream: truncated compressed input");
        continue;
      }
      if (rc != Z_OK) throwZlib("inflate", rc, zs_);
      if (produced == 0 && zs_.avail_in == 0 && rawEof_) {
        throw ContractViolation("gzip stream: truncated compressed input");
      }
    }

    setg(out_.data(), out_.data(), out_.data() + produced);
    return traits_type::to_int_type(*gptr());
  }

private:
  /// Pull the next block of compressed bytes into in_; sets rawEof_
  /// when the underlying stream is exhausted.
  void refill() {
    raw_->read(in_.data(), static_cast<std::streamsize>(in_.size()));
    const auto got = static_cast<std::size_t>(raw_->gcount());
    if (got == 0) rawEof_ = true;
    compressedBytes_ += got;
    zs_.next_in = reinterpret_cast<Bytef*>(in_.data());
    zs_.avail_in = static_cast<uInt>(got);
  }

  std::istream* raw_;
  std::vector<char> in_;
  std::vector<char> out_;
  z_stream zs_{};
  std::uint64_t compressedBytes_ = 0;
  bool live_ = false;
  bool rawEof_ = false;
  bool finished_ = false;
};

/// Deflating streambuf (gzip format: windowBits 15 + 16). The put area
/// is the fixed-size in_ buffer; overflow()/sync() deflate it through
/// out_ onto the raw stream. finish() emits the deflate tail and gzip
/// trailer; afterwards further writes are rejected.
class GzipOutBuf final : public std::streambuf {
public:
  GzipOutBuf(std::ostream& raw, int level, std::size_t bufBytes)
      : raw_(&raw), in_(bufBytes), out_(bufBytes) {
    MEMX_EXPECTS(bufBytes > 0, "gzip buffer size must be positive");
    MEMX_EXPECTS(level == -1 || (level >= 0 && level <= 9),
                 "gzip compression level must be -1 or 0..9");
    std::memset(&zs_, 0, sizeof(zs_));
    const int rc = deflateInit2(&zs_, level, Z_DEFLATED, 15 + 16, 8,
                                Z_DEFAULT_STRATEGY);
    if (rc != Z_OK) throwZlib("deflateInit2", rc, zs_);
    live_ = true;
    setp(in_.data(), in_.data() + in_.size());
  }

  ~GzipOutBuf() override {
    try {
      finish();
    } catch (...) {
      // Destructors must not throw; an explicit close() surfaces errors.
    }
    if (live_) {
      deflateEnd(&zs_);
      live_ = false;
    }
  }

  GzipOutBuf(const GzipOutBuf&) = delete;
  GzipOutBuf& operator=(const GzipOutBuf&) = delete;

  /// Deflate everything buffered and write the gzip trailer. Idempotent.
  void finish() {
    if (finished_ || !live_) return;
    deflatePending(Z_FINISH);
    finished_ = true;
    raw_->flush();
    MEMX_ENSURES(raw_->good(), "gzip stream: underlying write failed");
  }

protected:
  int_type overflow(int_type ch) override {
    MEMX_EXPECTS(!finished_, "gzip stream: write after close()");
    deflatePending(Z_NO_FLUSH);
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override {
    if (!finished_) deflatePending(Z_SYNC_FLUSH);
    raw_->flush();
    return raw_->good() ? 0 : -1;
  }

private:
  void deflatePending(int flushMode) {
    zs_.next_in = reinterpret_cast<Bytef*>(pbase());
    zs_.avail_in = static_cast<uInt>(pptr() - pbase());
    int rc = Z_OK;
    do {
      zs_.next_out = reinterpret_cast<Bytef*>(out_.data());
      zs_.avail_out = static_cast<uInt>(out_.size());
      rc = deflate(&zs_, flushMode);
      if (rc != Z_OK && rc != Z_STREAM_END && rc != Z_BUF_ERROR) {
        throwZlib("deflate", rc, zs_);
      }
      const std::size_t produced = out_.size() - zs_.avail_out;
      if (produced > 0) {
        raw_->write(out_.data(), static_cast<std::streamsize>(produced));
        MEMX_ENSURES(raw_->good(), "gzip stream: underlying write failed");
      }
      // Keep draining while deflate fills the whole output buffer, and,
      // when finishing, until Z_STREAM_END confirms the trailer is out.
    } while (zs_.avail_out == 0 ||
             (flushMode == Z_FINISH && rc != Z_STREAM_END));
    setp(in_.data(), in_.data() + in_.size());
  }

  std::ostream* raw_;
  std::vector<char> in_;
  std::vector<char> out_;
  z_stream zs_{};
  bool live_ = false;
  bool finished_ = false;
};

}  // namespace detail

GzipInputStream::GzipInputStream(std::istream& raw, std::size_t bufBytes)
    : std::istream(nullptr),
      buf_(std::make_unique<detail::GzipInBuf>(raw, bufBytes)) {
  rdbuf(buf_.get());
  // Formatted/unformatted reads catch streambuf exceptions, set badbit
  // and swallow them unless badbit is in the exceptions mask — which
  // would turn a corrupt trace into a silent short read. With the mask
  // set, the original ContractViolation is rethrown to the caller.
  exceptions(std::ios::badbit);
}

GzipInputStream::~GzipInputStream() = default;

std::uint64_t GzipInputStream::compressedBytesRead() const noexcept {
  return buf_->compressedBytesRead();
}

GzipOutputStream::GzipOutputStream(std::ostream& raw, int level,
                                   std::size_t bufBytes)
    : std::ostream(nullptr),
      buf_(std::make_unique<detail::GzipOutBuf>(raw, level, bufBytes)) {
  rdbuf(buf_.get());
}

GzipOutputStream::~GzipOutputStream() = default;

void GzipOutputStream::close() { buf_->finish(); }

#else  // !MEMX_HAVE_ZLIB

bool gzipSupported() noexcept { return false; }

namespace detail {
class GzipInBuf final : public std::streambuf {};
class GzipOutBuf final : public std::streambuf {};
}  // namespace detail

GzipInputStream::GzipInputStream(std::istream&, std::size_t)
    : std::istream(nullptr) {
  throw ContractViolation(
      "gzip stream: this build has no zlib; cannot read compressed traces");
}

GzipInputStream::~GzipInputStream() = default;

std::uint64_t GzipInputStream::compressedBytesRead() const noexcept {
  return 0;
}

GzipOutputStream::GzipOutputStream(std::ostream&, int, std::size_t)
    : std::ostream(nullptr) {
  throw ContractViolation(
      "gzip stream: this build has no zlib; cannot write compressed traces");
}

GzipOutputStream::~GzipOutputStream() = default;

void GzipOutputStream::close() {}

#endif  // MEMX_HAVE_ZLIB

}  // namespace memx
