// Bounded-memory gzip/zlib stream adapters.
//
// Real trace files ship compressed (a din text trace deflates ~10x), so
// out-of-core ingestion decompresses on the fly instead of inflating to
// disk or memory first. GzipInputStream is a std::istream whose
// streambuf inflates an underlying compressed stream through fixed-size
// buffers — memory use is independent of the decompressed size — and
// GzipOutputStream is the deflating counterpart the test suite and the
// ingest bench use to produce .din.gz fixtures.
//
// Both are thin wrappers over zlib. When the build found no zlib,
// gzipSupported() returns false and the constructors throw
// memx::ContractViolation instead of silently reading garbage.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>

namespace memx {

namespace detail {
class GzipInBuf;
class GzipOutBuf;
}  // namespace detail

/// True when this build can inflate/deflate gzip streams (zlib found at
/// configure time).
[[nodiscard]] bool gzipSupported() noexcept;

/// std::istream delivering the decompressed bytes of a gzip (or bare
/// zlib) stream read from `raw`. Detects the format from the header;
/// concatenated gzip members are inflated back to back, matching
/// `gzip -d`. Non-owning: `raw` must outlive this stream. Throws
/// ContractViolation on corrupt input (bad header, truncated stream,
/// CRC mismatch) and when gzip support is not built.
class GzipInputStream : public std::istream {
public:
  explicit GzipInputStream(std::istream& raw,
                           std::size_t bufBytes = std::size_t{1} << 16);
  ~GzipInputStream() override;

  /// Compressed bytes consumed from the underlying stream so far.
  [[nodiscard]] std::uint64_t compressedBytesRead() const noexcept;

private:
  std::unique_ptr<detail::GzipInBuf> buf_;
};

/// std::ostream whose bytes are deflated (gzip format) onto `raw`.
/// The stream is finalized (deflate tail + CRC) by close() or the
/// destructor; call close() explicitly when you need the flush to be
/// diagnosable, destructors swallow errors. `level` is the zlib
/// compression level (1 = fastest, 9 = smallest, -1 = zlib default).
class GzipOutputStream : public std::ostream {
public:
  explicit GzipOutputStream(std::ostream& raw, int level = -1,
                            std::size_t bufBytes = std::size_t{1} << 16);
  ~GzipOutputStream() override;

  /// Flush all pending output and write the gzip trailer. Idempotent.
  void close();

private:
  std::unique_ptr<detail::GzipOutBuf> buf_;
};

}  // namespace memx
