// Composable windowing over streaming trace sources.
//
// Real-program traces are long: the interesting region rarely starts at
// reference zero, caches need warming before statistics mean anything,
// and a sweep seldom needs the whole billion-access stream. TraceWindow
// names the three counts (skip, warmup, limit) and WindowedSource
// applies them as a TraceSource decorator, so any source — an in-memory
// vector, a din file, a gzip stream — windows the same way and windows
// compose by nesting.
#pragma once

#include <cstdint>

#include "memx/trace/trace.hpp"

namespace memx {

/// Reference-count windowing of a trace stream, applied in order:
/// drop `skip` references, then deliver `warmup` references that prime
/// simulator state but are excluded from reported statistics, then
/// deliver up to `limit` counted references (0 = unbounded).
///
/// WindowedSource enforces skip and the warmup + limit delivery cap;
/// the warmup/counted statistics split is the replay driver's job (it
/// snapshots counters at the boundary — see exploreTrace).
struct TraceWindow {
  std::uint64_t skip = 0;    ///< references dropped before anything else
  std::uint64_t warmup = 0;  ///< simulated but uncounted references
  std::uint64_t limit = 0;   ///< counted-reference cap; 0 = unbounded

  /// True when the window passes every reference through counted.
  [[nodiscard]] bool trivial() const noexcept {
    return skip == 0 && warmup == 0 && limit == 0;
  }
};

/// Applies a TraceWindow to an inner source. Non-owning: the inner
/// source must outlive the window. Single-pass, like every TraceSource.
class WindowedSource final : public TraceSource {
public:
  explicit WindowedSource(TraceSource& inner, TraceWindow window)
      : inner_(&inner), window_(window) {}

  [[nodiscard]] std::optional<MemRef> next() override;
  [[nodiscard]] IngestStats ingest() const override {
    return inner_->ingest();
  }

  [[nodiscard]] const TraceWindow& window() const noexcept {
    return window_;
  }
  /// References delivered so far (skip not included; warmup included).
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_;
  }

private:
  TraceSource* inner_;
  TraceWindow window_;
  std::uint64_t delivered_ = 0;
  bool skipped_ = false;
};

}  // namespace memx
