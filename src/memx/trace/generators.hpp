// Synthetic trace generators.
//
// Used by the test suite (known-answer cache behaviour) and by the
// ablation benches that need workloads with a controlled locality profile.
#pragma once

#include <cstdint>

#include "memx/trace/trace.hpp"

namespace memx {

/// `count` accesses starting at `base`, advancing by `strideBytes` each time.
/// stride 0 produces repeated accesses to one address.
[[nodiscard]] Trace stridedTrace(std::uint64_t base, std::size_t count,
                                 std::int64_t strideBytes,
                                 std::uint32_t size = 4,
                                 AccessType type = AccessType::Read);

/// Uniform-random addresses in [base, base + spanBytes), aligned to `size`.
/// Deterministic for a given seed.
[[nodiscard]] Trace randomTrace(std::uint64_t base, std::uint64_t spanBytes,
                                std::size_t count, std::uint64_t seed,
                                std::uint32_t size = 4,
                                AccessType type = AccessType::Read);

/// `rounds` sweeps over a working set of `elems` elements (classic loop
/// re-traversal; hits once the working set fits the cache).
[[nodiscard]] Trace loopingTrace(std::uint64_t base, std::size_t elems,
                                 std::size_t rounds, std::uint32_t size = 4,
                                 AccessType type = AccessType::Read);

/// Two interleaved streams `base0` and `base1` with the same stride; the
/// canonical conflict-miss provoker when the bases alias in the cache.
[[nodiscard]] Trace pingPongTrace(std::uint64_t base0, std::uint64_t base1,
                                  std::size_t pairs,
                                  std::int64_t strideBytes,
                                  std::uint32_t size = 4);

}  // namespace memx
