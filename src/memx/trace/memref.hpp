// A single memory reference as seen by the data cache.
//
// The DAC'99 study is trace-driven in spirit: every metric (miss rate,
// cycles, energy) is a function of the reference stream a kernel emits.
// MemRef is the atom of that stream.
#pragma once

#include <cstdint>

namespace memx {

/// Direction of a memory access. Instruction fetches behave like reads
/// everywhere in the simulators (they allocate and never dirty a line)
/// but keep their identity so din traces round-trip label 2.
enum class AccessType : std::uint8_t {
  Read,
  Write,
  Instr,
};

/// True for accesses that behave like loads (Read and Instr).
[[nodiscard]] constexpr bool isReadLike(AccessType type) noexcept {
  return type != AccessType::Write;
}

/// One data-memory reference: byte address, access width, direction.
struct MemRef {
  std::uint64_t addr = 0;   ///< byte address of the first byte touched
  std::uint32_t size = 4;   ///< access width in bytes (element size)
  AccessType type = AccessType::Read;

  [[nodiscard]] friend bool operator==(const MemRef&,
                                       const MemRef&) = default;
};

/// Convenience factory for a read reference.
[[nodiscard]] constexpr MemRef readRef(std::uint64_t addr,
                                       std::uint32_t size = 4) noexcept {
  return MemRef{addr, size, AccessType::Read};
}

/// Convenience factory for a write reference.
[[nodiscard]] constexpr MemRef writeRef(std::uint64_t addr,
                                        std::uint32_t size = 4) noexcept {
  return MemRef{addr, size, AccessType::Write};
}

/// Convenience factory for an instruction-fetch reference.
[[nodiscard]] constexpr MemRef instrRef(std::uint64_t addr,
                                        std::uint32_t size = 4) noexcept {
  return MemRef{addr, size, AccessType::Instr};
}

}  // namespace memx
