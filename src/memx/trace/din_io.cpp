#include "memx/trace/din_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "memx/util/assert.hpp"

namespace memx {

void writeDin(std::ostream& os, const Trace& trace) {
  for (const MemRef& ref : trace) {
    int label = static_cast<int>(DinLabel::Read);
    switch (ref.type) {
      case AccessType::Read:
        label = static_cast<int>(DinLabel::Read);
        break;
      case AccessType::Write:
        label = static_cast<int>(DinLabel::Write);
        break;
      case AccessType::Instr:
        label = static_cast<int>(DinLabel::Ifetch);
        break;
    }
    os << label << ' ' << std::hex << ref.addr << std::dec << '\n';
  }
}

Trace readDin(std::istream& is, std::uint32_t refSize) {
  MEMX_EXPECTS(refSize > 0, "reference size must be positive");
  Trace trace;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    // Strip comments and skip blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    int label = -1;
    std::string addrText;
    if (!(ls >> label)) continue;  // blank / comment-only line
    MEMX_EXPECTS(ls >> addrText, "din line " + std::to_string(lineNo) +
                                     ": missing address");
    MEMX_EXPECTS(label >= 0 && label <= 2,
                 "din line " + std::to_string(lineNo) +
                     ": unknown label " + std::to_string(label));
    std::uint64_t addr = 0;
    std::size_t consumed = 0;
    bool parsed = true;
    try {
      addr = std::stoull(addrText, &consumed, 16);
    } catch (const std::exception&) {
      parsed = false;
    }
    MEMX_EXPECTS(parsed && consumed == addrText.size(),
                 "din line " + std::to_string(lineNo) + ": bad address " +
                     addrText);
    AccessType type = AccessType::Read;
    if (label == static_cast<int>(DinLabel::Write)) {
      type = AccessType::Write;
    } else if (label == static_cast<int>(DinLabel::Ifetch)) {
      type = AccessType::Instr;
    }
    trace.push(MemRef{addr, refSize, type});
  }
  return trace;
}

std::string toDinString(const Trace& trace) {
  std::ostringstream os;
  writeDin(os, trace);
  return os.str();
}

Trace fromDinString(const std::string& text, std::uint32_t refSize) {
  std::istringstream is(text);
  return readDin(is, refSize);
}

}  // namespace memx
