#include "memx/trace/din_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "memx/util/assert.hpp"
#include "memx/util/numeric_io.hpp"

namespace memx {

void writeDin(std::ostream& os, const Trace& trace) {
  // Streamed integers obey the locale's grouping: pin the classic
  // locale so a grouping-happy global locale cannot corrupt addresses.
  const ClassicLocaleGuard locale(os);
  for (const MemRef& ref : trace) {
    int label = static_cast<int>(DinLabel::Read);
    switch (ref.type) {
      case AccessType::Read:
        label = static_cast<int>(DinLabel::Read);
        break;
      case AccessType::Write:
        label = static_cast<int>(DinLabel::Write);
        break;
      case AccessType::Instr:
        label = static_cast<int>(DinLabel::Ifetch);
        break;
    }
    os << label << ' ' << std::hex << ref.addr << std::dec << '\n';
  }
}

namespace {

[[nodiscard]] bool isSpace(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

[[nodiscard]] bool isDigit(char c) noexcept { return c >= '0' && c <= '9'; }

[[nodiscard]] int hexValue(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

[[nodiscard]] std::string_view skipSpace(std::string_view s) noexcept {
  std::size_t i = 0;
  while (i < s.size() && isSpace(s[i])) ++i;
  return s.substr(i);
}

[[noreturn]] void badLine(std::size_t lineNo, const std::string& what) {
  throw ContractViolation("din line " + std::to_string(lineNo) + ": " + what);
}

}  // namespace

std::optional<MemRef> parseDinLine(std::string_view line, std::size_t lineNo,
                                   std::uint32_t refSize) {
  MEMX_EXPECTS(refSize > 0, "reference size must be positive");

  // Strip trailing comment, then leading whitespace.
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  line = skipSpace(line);
  if (line.empty()) return std::nullopt;

  // Label: bare decimal digits, value 0..2. A lenient `>> int` parse
  // would accept "+1"/"-1" and silently skip non-numeric lines; both
  // hide trace corruption, so be strict.
  std::size_t i = 0;
  unsigned label = 0;
  std::size_t labelDigits = 0;
  while (i < line.size() && isDigit(line[i])) {
    label = label * 10 + static_cast<unsigned>(line[i] - '0');
    if (label > 9) label = 10;  // clamp; only 0..2 is ever valid
    ++labelDigits;
    ++i;
  }
  if (labelDigits == 0 || (i < line.size() && !isSpace(line[i]))) {
    badLine(lineNo, "bad label '" + std::string(line.substr(0, line.find_first_of(" \t\r\v\f"))) + "'");
  }
  if (label > 2) {
    badLine(lineNo, "unknown label " + std::to_string(label));
  }

  // Address: unsigned hex, optional 0x/0X prefix. No sign: stoull-style
  // parsing would wrap "-1" to 0xffffffffffffffff.
  std::string_view rest = skipSpace(line.substr(i));
  if (rest.empty()) badLine(lineNo, "missing address");
  const std::string_view addrText =
      rest.substr(0, [&] {
        std::size_t n = 0;
        while (n < rest.size() && !isSpace(rest[n])) ++n;
        return n;
      }());
  std::string_view digits = addrText;
  if (digits.size() >= 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    digits = digits.substr(2);
  }
  if (digits.empty()) {
    badLine(lineNo, "bad address '" + std::string(addrText) + "'");
  }
  std::uint64_t addr = 0;
  std::size_t significant = 0;
  for (char c : digits) {
    const int v = hexValue(c);
    if (v < 0) badLine(lineNo, "bad address '" + std::string(addrText) + "'");
    if (addr != 0 || v != 0) ++significant;
    if (significant > 16) {
      badLine(lineNo,
              "address '" + std::string(addrText) + "' overflows 64 bits");
    }
    addr = (addr << 4) | static_cast<std::uint64_t>(v);
  }

  // Nothing may follow the address — trailing tokens used to be
  // silently dropped, which turned column misalignment into a
  // wrong-but-plausible trace.
  const std::string_view tail = skipSpace(rest.substr(addrText.size()));
  if (!tail.empty()) {
    badLine(lineNo, "trailing garbage '" + std::string(tail) + "'");
  }

  AccessType type = AccessType::Read;
  if (label == static_cast<unsigned>(DinLabel::Write)) {
    type = AccessType::Write;
  } else if (label == static_cast<unsigned>(DinLabel::Ifetch)) {
    type = AccessType::Instr;
  }
  return MemRef{addr, refSize, type};
}

DinStreamSource::DinStreamSource(std::istream& is, std::uint32_t refSize)
    : is_(&is), refSize_(refSize) {
  MEMX_EXPECTS(refSize > 0, "reference size must be positive");
}

std::optional<MemRef> DinStreamSource::next() {
  while (std::getline(*is_, line_)) {
    ++lineNo_;
    auto ref = parseDinLine(line_, lineNo_, refSize_);
    if (ref) {
      ++refsDecoded_;
      return ref;
    }
  }
  return std::nullopt;
}

Trace readDin(std::istream& is, std::uint32_t refSize) {
  DinStreamSource source(is, refSize);
  return drain(source);
}

std::string toDinString(const Trace& trace) {
  std::ostringstream os;
  writeDin(os, trace);
  return os.str();
}

Trace fromDinString(const std::string& text, std::uint32_t refSize) {
  std::istringstream is(text);
  return readDin(is, refSize);
}

}  // namespace memx
