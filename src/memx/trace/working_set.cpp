#include "memx/trace/working_set.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

ReuseProfile::ReuseProfile(const Trace& trace, std::uint32_t lineBytes) {
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");

  // LRU stack, most recent first.
  std::vector<std::uint64_t> stack;
  auto touch = [&](std::uint64_t line) {
    ++accesses_;
    const auto it = std::find(stack.begin(), stack.end(), line);
    if (it == stack.end()) {
      ++cold_;
      stack.insert(stack.begin(), line);
      histogram_.resize(stack.size(), 0);
      return;
    }
    const auto distance =
        static_cast<std::uint64_t>(it - stack.begin());
    if (distance >= histogram_.size()) {
      histogram_.resize(distance + 1, 0);
    }
    ++histogram_[distance];
    stack.erase(it);
    stack.insert(stack.begin(), line);
  };

  for (const MemRef& ref : trace) {
    const std::uint64_t first = ref.addr / lineBytes;
    const std::uint64_t last = (ref.addr + ref.size - 1) / lineBytes;
    for (std::uint64_t line = first; line <= last; ++line) touch(line);
  }
}

std::uint64_t ReuseProfile::countAtDistance(std::uint64_t d) const {
  return d < histogram_.size() ? histogram_[d] : 0;
}

double ReuseProfile::predictedMissRate(std::uint64_t lines) const {
  if (accesses_ == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::uint64_t limit =
      std::min<std::uint64_t>(lines, histogram_.size());
  for (std::uint64_t d = 0; d < limit; ++d) hits += histogram_[d];
  return static_cast<double>(accesses_ - hits) /
         static_cast<double>(accesses_);
}

std::uint64_t ReuseProfile::linesForHitRate(double hitFraction) const {
  MEMX_EXPECTS(hitFraction >= 0.0 && hitFraction <= 1.0,
               "hit fraction must be in [0,1]");
  if (accesses_ == 0) return 0;
  const double needed = hitFraction * static_cast<double>(accesses_);
  std::uint64_t hits = 0;
  for (std::uint64_t d = 0; d < histogram_.size(); ++d) {
    hits += histogram_[d];
    if (static_cast<double>(hits) >= needed) return d + 1;
  }
  return uniqueLines();
}

}  // namespace memx
