#include "memx/trace/working_set.hpp"

#include <algorithm>

#include "memx/stackdist/ordered_stack.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

ReuseProfile::ReuseProfile(const Trace& trace, std::uint32_t lineBytes) {
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");

  OrderedStack stack;
  auto touch = [&](std::uint64_t line) {
    ++accesses_;
    const std::uint64_t distance = stack.touch(line);
    if (distance == kColdDistance) {
      ++cold_;
      // The histogram spans every distance a future re-access could
      // have, so its size is the number of distinct lines seen.
      histogram_.resize(stack.uniqueLines(), 0);
      return;
    }
    ++histogram_[distance];
  };

  for (const MemRef& ref : trace) {
    const std::uint64_t first = ref.addr / lineBytes;
    const std::uint64_t last = (ref.addr + ref.size - 1) / lineBytes;
    for (std::uint64_t line = first; line <= last; ++line) touch(line);
  }
}

std::uint64_t ReuseProfile::countAtDistance(std::uint64_t d) const {
  return d < histogram_.size() ? histogram_[d] : 0;
}

double ReuseProfile::predictedMissRate(std::uint64_t lines) const {
  if (accesses_ == 0) return 0.0;
  std::uint64_t hits = 0;
  const std::uint64_t limit =
      std::min<std::uint64_t>(lines, histogram_.size());
  for (std::uint64_t d = 0; d < limit; ++d) hits += histogram_[d];
  return static_cast<double>(accesses_ - hits) /
         static_cast<double>(accesses_);
}

std::uint64_t ReuseProfile::linesForHitRate(double hitFraction) const {
  MEMX_EXPECTS(hitFraction >= 0.0 && hitFraction <= 1.0,
               "hit fraction must be in [0,1]");
  if (accesses_ == 0) return 0;
  const double needed = hitFraction * static_cast<double>(accesses_);
  std::uint64_t hits = 0;
  for (std::uint64_t d = 0; d < histogram_.size(); ++d) {
    hits += histogram_[d];
    if (static_cast<double>(hits) >= needed) return d + 1;
  }
  return uniqueLines();
}

}  // namespace memx
