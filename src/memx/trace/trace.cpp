#include "memx/trace/trace.hpp"

#include <algorithm>

namespace memx {

void Trace::append(const Trace& other) {
  refs_.insert(refs_.end(), other.refs_.begin(), other.refs_.end());
}

std::size_t Trace::readCount() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(refs_.begin(), refs_.end(), [](const MemRef& r) {
        return isReadLike(r.type);
      }));
}

std::size_t Trace::writeCount() const noexcept {
  return refs_.size() - readCount();
}

std::optional<MemRef> VectorTraceSource::next() {
  if (pos_ >= trace_.size()) return std::nullopt;
  return trace_[pos_++];
}

std::size_t fillChunk(TraceSource& source, std::vector<MemRef>& buf,
                      std::size_t chunkRefs) {
  buf.clear();
  while (buf.size() < chunkRefs) {
    auto ref = source.next();
    if (!ref) break;
    buf.push_back(*ref);
  }
  return buf.size();
}

Trace drain(TraceSource& source) {
  Trace out;
  while (auto ref = source.next()) out.push(*ref);
  return out;
}

}  // namespace memx
