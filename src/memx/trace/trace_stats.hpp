// Static trace statistics: footprint, unique lines, stride histogram.
// Independent of any cache — these characterize the workload itself.
#pragma once

#include <cstdint>
#include <map>

#include "memx/trace/trace.hpp"

namespace memx {

/// Summary statistics of a reference stream.
struct TraceStats {
  std::size_t total = 0;            ///< total references
  std::size_t reads = 0;            ///< read references
  std::size_t writes = 0;           ///< write references
  std::uint64_t minAddr = 0;        ///< lowest byte touched
  std::uint64_t maxAddr = 0;        ///< highest byte touched (inclusive)
  std::size_t uniqueAddresses = 0;  ///< distinct first-byte addresses
  std::size_t uniqueLines = 0;      ///< distinct lines at `lineSize`
  std::uint32_t lineSize = 0;       ///< line size uniqueLines was computed at

  /// Footprint in bytes (span of the address range touched).
  [[nodiscard]] std::uint64_t footprint() const noexcept {
    return total == 0 ? 0 : maxAddr - minAddr + 1;
  }
};

/// Compute summary statistics; `lineSize` must be a power of two.
[[nodiscard]] TraceStats computeStats(const Trace& trace,
                                      std::uint32_t lineSize = 4);

/// Histogram of signed strides between consecutive references
/// (stride -> occurrence count). Useful for validating kernel generators.
[[nodiscard]] std::map<std::int64_t, std::size_t> strideHistogram(
    const Trace& trace);

}  // namespace memx
