#include "memx/trace/generators.hpp"

#include <random>

#include "memx/util/assert.hpp"

namespace memx {

Trace stridedTrace(std::uint64_t base, std::size_t count,
                   std::int64_t strideBytes, std::uint32_t size,
                   AccessType type) {
  MEMX_EXPECTS(size > 0, "access size must be positive");
  Trace t;
  std::uint64_t addr = base;
  for (std::size_t i = 0; i < count; ++i) {
    t.push(MemRef{addr, size, type});
    addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(addr) +
                                      strideBytes);
  }
  return t;
}

Trace randomTrace(std::uint64_t base, std::uint64_t spanBytes,
                  std::size_t count, std::uint64_t seed, std::uint32_t size,
                  AccessType type) {
  MEMX_EXPECTS(size > 0, "access size must be positive");
  MEMX_EXPECTS(spanBytes >= size, "span must hold at least one element");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> dist(0,
                                                    spanBytes / size - 1);
  Trace t;
  for (std::size_t i = 0; i < count; ++i) {
    t.push(MemRef{base + dist(rng) * size, size, type});
  }
  return t;
}

Trace loopingTrace(std::uint64_t base, std::size_t elems, std::size_t rounds,
                   std::uint32_t size, AccessType type) {
  MEMX_EXPECTS(size > 0, "access size must be positive");
  Trace t;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < elems; ++i) {
      t.push(MemRef{base + i * size, size, type});
    }
  }
  return t;
}

Trace pingPongTrace(std::uint64_t base0, std::uint64_t base1,
                    std::size_t pairs, std::int64_t strideBytes,
                    std::uint32_t size) {
  MEMX_EXPECTS(size > 0, "access size must be positive");
  Trace t;
  std::int64_t off = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    t.push(readRef(base0 + static_cast<std::uint64_t>(off), size));
    t.push(readRef(base1 + static_cast<std::uint64_t>(off), size));
    off += strideBytes;
  }
  return t;
}

}  // namespace memx
