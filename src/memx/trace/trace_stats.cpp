#include "memx/trace/trace_stats.hpp"

#include <unordered_set>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

TraceStats computeStats(const Trace& trace, std::uint32_t lineSize) {
  MEMX_EXPECTS(isPow2(lineSize), "line size must be a power of two");
  TraceStats s;
  s.lineSize = lineSize;
  s.total = trace.size();
  if (trace.empty()) return s;

  s.minAddr = trace[0].addr;
  s.maxAddr = trace[0].addr;
  std::unordered_set<std::uint64_t> addrs;
  std::unordered_set<std::uint64_t> lines;
  for (const MemRef& r : trace) {
    if (isReadLike(r.type)) {
      ++s.reads;
    } else {
      ++s.writes;
    }
    const std::uint64_t last = r.addr + r.size - 1;
    s.minAddr = std::min(s.minAddr, r.addr);
    s.maxAddr = std::max(s.maxAddr, last);
    addrs.insert(r.addr);
    for (std::uint64_t line = r.addr / lineSize; line <= last / lineSize;
         ++line) {
      lines.insert(line);
    }
  }
  s.uniqueAddresses = addrs.size();
  s.uniqueLines = lines.size();
  return s;
}

std::map<std::int64_t, std::size_t> strideHistogram(const Trace& trace) {
  std::map<std::int64_t, std::size_t> hist;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto stride = static_cast<std::int64_t>(trace[i].addr) -
                        static_cast<std::int64_t>(trace[i - 1].addr);
    ++hist[stride];
  }
  return hist;
}

}  // namespace memx
