// In-memory address traces and streaming trace sources.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "memx/trace/memref.hpp"

namespace memx {

/// An ordered sequence of memory references (the unit the cache simulator,
/// bus monitor and energy accounting all consume).
class Trace {
public:
  Trace() = default;
  explicit Trace(std::vector<MemRef> refs) : refs_(std::move(refs)) {}

  /// Append one reference to the end of the trace.
  void push(const MemRef& ref) { refs_.push_back(ref); }

  /// Append every reference of `other`, preserving order.
  void append(const Trace& other);

  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return refs_.empty(); }
  [[nodiscard]] const MemRef& operator[](std::size_t i) const {
    return refs_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return refs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return refs_.end(); }

  [[nodiscard]] const std::vector<MemRef>& refs() const noexcept {
    return refs_;
  }

  /// Number of read-like references (loads and instruction fetches).
  [[nodiscard]] std::size_t readCount() const noexcept;
  /// Number of write references.
  [[nodiscard]] std::size_t writeCount() const noexcept;

private:
  std::vector<MemRef> refs_;
};

/// Pull-based source of references; lets large synthetic workloads be
/// simulated without materializing the whole trace.
class TraceSource {
public:
  virtual ~TraceSource() = default;
  /// Next reference, or nullopt when the stream is exhausted.
  [[nodiscard]] virtual std::optional<MemRef> next() = 0;
};

/// Adapts an in-memory Trace to the streaming interface.
class VectorTraceSource final : public TraceSource {
public:
  explicit VectorTraceSource(Trace trace) : trace_(std::move(trace)) {}
  [[nodiscard]] std::optional<MemRef> next() override;

private:
  Trace trace_;
  std::size_t pos_ = 0;
};

/// Drain a source into an in-memory trace (test/bench helper).
[[nodiscard]] Trace drain(TraceSource& source);

}  // namespace memx
