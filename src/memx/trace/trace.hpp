// In-memory address traces and streaming trace sources.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "memx/trace/memref.hpp"

namespace memx {

/// An ordered sequence of memory references (the unit the cache simulator,
/// bus monitor and energy accounting all consume).
class Trace {
public:
  Trace() = default;
  explicit Trace(std::vector<MemRef> refs) : refs_(std::move(refs)) {}

  /// Append one reference to the end of the trace.
  void push(const MemRef& ref) { refs_.push_back(ref); }

  /// Append every reference of `other`, preserving order.
  void append(const Trace& other);

  [[nodiscard]] std::size_t size() const noexcept { return refs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return refs_.empty(); }
  [[nodiscard]] const MemRef& operator[](std::size_t i) const {
    return refs_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return refs_.begin(); }
  [[nodiscard]] auto end() const noexcept { return refs_.end(); }

  [[nodiscard]] const std::vector<MemRef>& refs() const noexcept {
    return refs_;
  }

  /// Number of read-like references (loads and instruction fetches).
  [[nodiscard]] std::size_t readCount() const noexcept;
  /// Number of write references.
  [[nodiscard]] std::size_t writeCount() const noexcept;

private:
  std::vector<MemRef> refs_;
};

/// I/O-side accounting of a streaming source (what external ingestion
/// has cost so far, not what a consumer has kept). Sources that do no
/// external decoding report zeros.
struct IngestStats {
  std::uint64_t bytesRead = 0;    ///< raw bytes consumed (compressed size
                                  ///< for a .din.gz, file size for a .din)
  std::uint64_t refsDecoded = 0;  ///< references decoded from the format
};

/// Default chunk granularity of the streaming replay loops: 64k
/// references (~1 MiB of MemRef buffer) keeps the per-chunk dispatch
/// cost invisible while bounding resident memory independent of trace
/// length.
inline constexpr std::size_t kDefaultTraceChunkRefs = std::size_t{1} << 16;

/// Pull-based source of references; lets large synthetic workloads and
/// out-of-core trace files be simulated without materializing the whole
/// trace.
class TraceSource {
public:
  virtual ~TraceSource() = default;
  /// Next reference, or nullopt when the stream is exhausted.
  [[nodiscard]] virtual std::optional<MemRef> next() = 0;
  /// Ingestion-side accounting; decorators forward to the source they
  /// wrap so the decode cost stays visible through a windowing chain.
  [[nodiscard]] virtual IngestStats ingest() const { return {}; }
};

/// Fill `buf` (cleared first) with up to `chunkRefs` references pulled
/// from `source`. Returns the number delivered; a short count means the
/// source is exhausted. The chunked replay loops are all built on this.
std::size_t fillChunk(TraceSource& source, std::vector<MemRef>& buf,
                      std::size_t chunkRefs);

/// Adapts an in-memory Trace to the streaming interface.
class VectorTraceSource final : public TraceSource {
public:
  explicit VectorTraceSource(Trace trace) : trace_(std::move(trace)) {}
  [[nodiscard]] std::optional<MemRef> next() override;

private:
  Trace trace_;
  std::size_t pos_ = 0;
};

/// Drain a source into an in-memory trace (test/bench helper).
[[nodiscard]] Trace drain(TraceSource& source);

}  // namespace memx
