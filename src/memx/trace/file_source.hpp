// Out-of-core trace files as streaming sources.
//
// FileTraceSource is the production entry point for real-program
// traces: it opens a din text file — transparently inflating it when
// the path ends in .gz — and delivers references one at a time through
// the TraceSource interface, so a multi-hundred-MB trace sweeps through
// the simulators in bounded memory. Composition, innermost first:
//
//   std::ifstream (binary)
//     -> byte-counting streambuf        (ingest().bytesRead)
//     -> GzipInputStream when *.gz      (bounded-memory inflate)
//     -> DinStreamSource                (ingest().refsDecoded)
//
// Wrap it in a WindowedSource for skip/warmup/limit.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

#include "memx/trace/din_io.hpp"
#include "memx/trace/gzip_stream.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

namespace detail {

/// Pass-through streambuf that counts the raw bytes pulled from the
/// stream it wraps — compressed bytes for a .gz file — so ingestion
/// cost is observable no matter what decoders sit on top.
class CountingInBuf final : public std::streambuf {
public:
  explicit CountingInBuf(std::istream& raw,
                         std::size_t bufBytes = std::size_t{1} << 16)
      : raw_(&raw), buf_(bufBytes) {}

  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

protected:
  int_type underflow() override;

private:
  std::istream* raw_;
  std::vector<char> buf_;
  std::uint64_t bytes_ = 0;
};

}  // namespace detail

/// True when `path` names a gzip-compressed file by extension (".gz").
[[nodiscard]] bool isGzipPath(const std::string& path);

/// Streams a din trace file (plain or .gz) from disk. Throws
/// memx::ContractViolation when the file cannot be opened, when a .gz
/// path is given but the build has no zlib, and (from the din decoder)
/// on malformed lines. Single-pass; construct a fresh source to rescan.
class FileTraceSource final : public TraceSource {
public:
  explicit FileTraceSource(const std::string& path,
                           std::uint32_t refSize = 4);
  ~FileTraceSource() override;

  [[nodiscard]] std::optional<MemRef> next() override;
  /// bytesRead counts file bytes consumed (compressed size for .gz);
  /// refsDecoded counts din references parsed.
  [[nodiscard]] IngestStats ingest() const override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  std::string path_;
  std::ifstream file_;
  detail::CountingInBuf counting_;
  std::istream counted_;
  std::unique_ptr<GzipInputStream> gunzip_;  // null for plain files
  std::unique_ptr<DinStreamSource> din_;
};

}  // namespace memx
