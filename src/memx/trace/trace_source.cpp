#include "memx/trace/trace_source.hpp"

namespace memx {

std::optional<MemRef> WindowedSource::next() {
  if (!skipped_) {
    skipped_ = true;
    for (std::uint64_t i = 0; i < window_.skip; ++i) {
      if (!inner_->next()) return std::nullopt;
    }
  }
  if (window_.limit != 0 &&
      delivered_ >= window_.warmup + window_.limit) {
    return std::nullopt;
  }
  auto ref = inner_->next();
  if (ref) ++delivered_;
  return ref;
}

}  // namespace memx
