// Dinero "din" trace format I/O.
//
// The paper cites Edler & Hill's Dinero IV as the trace-driven
// alternative to its closed-form expressions. This module reads and
// writes the classic din format — one `<label> <hex-address>` pair per
// line, label 0 = read, 1 = write, 2 = instruction fetch — so traces can
// be exchanged with Dinero and other academic tools.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "memx/trace/trace.hpp"

namespace memx {

/// Dinero reference labels.
enum class DinLabel : int {
  Read = 0,
  Write = 1,
  Ifetch = 2,
};

/// Write `trace` in din format ("0 1a2b\n" ...). Reads, writes and
/// instruction fetches map to labels 0/1/2; the per-reference size is not
/// representable in din and is dropped (Dinero assumes word accesses).
void writeDin(std::ostream& os, const Trace& trace);

/// Parse one din line. Returns nullopt for blank / comment-only lines
/// (a `#` starts a comment running to end of line). Otherwise the line
/// must be exactly `<label> <hex-address>`: the label a bare decimal
/// 0/1/2 and the address unsigned hex digits with an optional 0x/0X
/// prefix. Signed addresses ("-1" would silently wrap to 2^64-1 through
/// a lenient strtoull-style parse), out-of-range values and trailing
/// tokens all throw memx::ContractViolation naming `lineNo`.
/// `refSize` is stamped on the returned reference.
[[nodiscard]] std::optional<MemRef> parseDinLine(std::string_view line,
                                                 std::size_t lineNo,
                                                 std::uint32_t refSize = 4);

/// Streaming din decoder over any std::istream (a file, a
/// GzipInputStream, a stringstream). Pulls one line per next() call, so
/// memory use is independent of trace length. Non-owning: the stream
/// must outlive the source. ingest() reports references decoded; byte
/// accounting belongs to the stream owner (see FileTraceSource).
class DinStreamSource final : public TraceSource {
public:
  explicit DinStreamSource(std::istream& is, std::uint32_t refSize = 4);

  [[nodiscard]] std::optional<MemRef> next() override;
  [[nodiscard]] IngestStats ingest() const override {
    return {0, refsDecoded_};
  }

  /// Lines consumed so far (including blanks and comments).
  [[nodiscard]] std::size_t lineNo() const noexcept { return lineNo_; }

private:
  std::istream* is_;
  std::string line_;
  std::uint32_t refSize_;
  std::size_t lineNo_ = 0;
  std::uint64_t refsDecoded_ = 0;
};

/// Parse a din stream into memory. Blank lines and comments are
/// skipped; everything else must satisfy parseDinLine, which throws
/// memx::ContractViolation (naming the line) on malformed input.
/// Label 2 (ifetch) is preserved as AccessType::Instr so traces
/// round-trip. `refSize` is the access size to stamp on every
/// reference.
[[nodiscard]] Trace readDin(std::istream& is, std::uint32_t refSize = 4);

/// Convenience: round-trip through a string (test/bench helper).
[[nodiscard]] std::string toDinString(const Trace& trace);
[[nodiscard]] Trace fromDinString(const std::string& text,
                                  std::uint32_t refSize = 4);

}  // namespace memx
