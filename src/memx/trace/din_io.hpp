// Dinero "din" trace format I/O.
//
// The paper cites Edler & Hill's Dinero IV as the trace-driven
// alternative to its closed-form expressions. This module reads and
// writes the classic din format — one `<label> <hex-address>` pair per
// line, label 0 = read, 1 = write, 2 = instruction fetch — so traces can
// be exchanged with Dinero and other academic tools.
#pragma once

#include <iosfwd>
#include <string>

#include "memx/trace/trace.hpp"

namespace memx {

/// Dinero reference labels.
enum class DinLabel : int {
  Read = 0,
  Write = 1,
  Ifetch = 2,
};

/// Write `trace` in din format ("0 1a2b\n" ...). Reads, writes and
/// instruction fetches map to labels 0/1/2; the per-reference size is not
/// representable in din and is dropped (Dinero assumes word accesses).
void writeDin(std::ostream& os, const Trace& trace);

/// Parse a din stream. Lines may use any whitespace separation; blank
/// lines and lines starting with '#' are skipped. Label 2 (ifetch) is
/// preserved as AccessType::Instr so traces round-trip. Throws
/// memx::ContractViolation on malformed input.
/// `refSize` is the access size to stamp on every reference.
[[nodiscard]] Trace readDin(std::istream& is, std::uint32_t refSize = 4);

/// Convenience: round-trip through a string (test/bench helper).
[[nodiscard]] std::string toDinString(const Trace& trace);
[[nodiscard]] Trace fromDinString(const std::string& text,
                                  std::uint32_t refSize = 4);

}  // namespace memx
