#include "memx/trace/file_source.hpp"

#include "memx/util/assert.hpp"

namespace memx {

namespace detail {

CountingInBuf::int_type CountingInBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  raw_->read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  const auto got = static_cast<std::size_t>(raw_->gcount());
  if (got == 0) return traits_type::eof();
  bytes_ += got;
  setg(buf_.data(), buf_.data(), buf_.data() + got);
  return traits_type::to_int_type(*gptr());
}

}  // namespace detail

bool isGzipPath(const std::string& path) {
  static const std::string kExt = ".gz";
  return path.size() > kExt.size() &&
         path.compare(path.size() - kExt.size(), kExt.size(), kExt) == 0;
}

FileTraceSource::FileTraceSource(const std::string& path,
                                 std::uint32_t refSize)
    : path_(path),
      file_(path, std::ios::binary),
      counting_(file_),
      counted_(&counting_) {
  MEMX_EXPECTS(file_.is_open(), "cannot open trace file: " + path);
  if (isGzipPath(path)) {
    MEMX_EXPECTS(gzipSupported(),
                 "trace file " + path +
                     " is gzip-compressed but this build has no zlib");
    gunzip_ = std::make_unique<GzipInputStream>(counted_);
    din_ = std::make_unique<DinStreamSource>(*gunzip_, refSize);
  } else {
    din_ = std::make_unique<DinStreamSource>(counted_, refSize);
  }
}

FileTraceSource::~FileTraceSource() = default;

std::optional<MemRef> FileTraceSource::next() { return din_->next(); }

IngestStats FileTraceSource::ingest() const {
  return {counting_.bytes(), din_->ingest().refsDecoded};
}

}  // namespace memx
