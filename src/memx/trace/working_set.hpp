// Reuse-distance (LRU stack distance) analysis — Mattson et al. 1970.
//
// One pass over a trace yields the miss rate of *every* fully-associative
// LRU cache size at once: an access at stack distance d hits in any cache
// of more than d lines. Distances come from the O(log U)-per-touch
// OrderedStack engine (memx/stackdist/ordered_stack.hpp); the naive
// linear stack walk survives only as the test oracle
// (memx/check/ref_stack_dist.hpp). The exploration engine uses the
// set-associative generalization (AllAssocProfile) for exact
// per-geometry numbers; this profile provides the capacity-only view —
// the working-set curve — and a cross-check for the simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/trace/trace.hpp"

namespace memx {

/// Stack-distance histogram of one trace at a given line size.
class ReuseProfile {
public:
  /// Compute the profile (one O(n log uniqueLines) trace pass).
  /// `lineBytes` must be a power of two.
  ReuseProfile(const Trace& trace, std::uint32_t lineBytes);

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return accesses_;
  }
  /// First-touch (infinite-cache) misses.
  [[nodiscard]] std::uint64_t coldMisses() const noexcept {
    return cold_;
  }
  /// Number of distinct lines in the trace.
  [[nodiscard]] std::uint64_t uniqueLines() const noexcept {
    return static_cast<std::uint64_t>(histogram_.size());
  }
  /// Accesses with stack distance exactly `d` (0 = re-access of the MRU
  /// line).
  [[nodiscard]] std::uint64_t countAtDistance(std::uint64_t d) const;

  /// Predicted miss rate of a fully-associative LRU cache with `lines`
  /// lines: cold misses plus accesses at distance >= lines.
  [[nodiscard]] double predictedMissRate(std::uint64_t lines) const;

  /// Smallest number of lines whose predicted hit coverage reaches
  /// `hitFraction` of all accesses (the working-set knee). Returns
  /// uniqueLines() when unreachable.
  [[nodiscard]] std::uint64_t linesForHitRate(double hitFraction) const;

private:
  std::vector<std::uint64_t> histogram_;  ///< index = stack distance
  std::uint64_t cold_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace memx
