#include "memx/serve/result_store.hpp"

#include <algorithm>

namespace memx::serve {

namespace {

/// Conservative bound containment: true when every sweep key the child
/// ranges generate is plausibly inside the parent's grid. The server
/// still verifies key by key, so false positives cost a lookup pass,
/// never a wrong answer; false negatives only cost a re-simulation.
[[nodiscard]] bool covers(const ExploreRanges& p, const ExploreRanges& c) {
  const auto effMaxCache = [](const ExploreRanges& r) {
    return std::min(r.maxCacheBytes, r.onChipBytes);
  };
  if (p.minCacheBytes > c.minCacheBytes) return false;
  if (effMaxCache(p) < effMaxCache(c)) return false;
  if (p.minLineBytes > c.minLineBytes) return false;
  if (p.maxLineBytes < c.maxLineBytes) return false;
  if (c.sweepAssociativity &&
      (!p.sweepAssociativity || p.maxAssociativity < c.maxAssociativity)) {
    return false;
  }
  if (c.sweepTiling && (!p.sweepTiling || p.maxTiling < c.maxTiling)) {
    return false;
  }
  return true;
}

}  // namespace

ResultStore::Outcome ResultStore::get(const Key& key) {
  std::unique_lock lock(mutex_);
  while (true) {
    const auto it = entries_.find(key.exact);
    if (it != entries_.end()) {
      Entry& entry = it->second;
      if (entry.value != nullptr) {
        if (entry.generation != generation_) {
          // Stale ready entry (invalidated while idle): drop and fall
          // through to the miss path.
          entries_.erase(it);
          continue;
        }
        ++counters_.hits;
        entry.lastUse = ++tick_;
        return {entry.value, nullptr, false, generation_};
      }
      // Pending: wait for the leader to publish or fail, then re-check.
      // (A stale-generation pending entry is erased by its leader's
      // publish/fail, which wakes us.)
      ready_.wait(lock);
      continue;
    }
    // Miss: claim leadership by inserting the pending slot.
    Entry entry;
    entry.generation = generation_;
    entry.base = key.base;
    entry.ranges = key.ranges;
    std::shared_ptr<const StoredResult> parent = findCoveringLocked(key);
    entries_.emplace(key.exact, std::move(entry));
    return {nullptr, std::move(parent), true, generation_};
  }
}

bool ResultStore::publish(const std::string& exactKey,
                          std::uint64_t generation,
                          std::shared_ptr<const StoredResult> value) {
  bool installed = false;
  {
    const std::lock_guard lock(mutex_);
    const auto it = entries_.find(exactKey);
    if (it != entries_.end() && it->second.value == nullptr) {
      if (generation == generation_ && it->second.generation == generation_) {
        it->second.value = std::move(value);
        it->second.lastUse = ++tick_;
        installed = true;
        evictLocked();
      } else {
        // Computed against an invalidated model: never cache it.
        entries_.erase(it);
      }
    }
  }
  ready_.notify_all();
  return installed;
}

void ResultStore::fail(const std::string& exactKey,
                       std::uint64_t generation) noexcept {
  {
    const std::lock_guard lock(mutex_);
    const auto it = entries_.find(exactKey);
    if (it != entries_.end() && it->second.value == nullptr &&
        it->second.generation <= generation) {
      entries_.erase(it);
    }
  }
  // Wake every waiter: the first to re-check becomes the new leader.
  ready_.notify_all();
}

void ResultStore::countMiss() noexcept {
  const std::lock_guard lock(mutex_);
  ++counters_.misses;
}

void ResultStore::countSubsetHit() noexcept {
  const std::lock_guard lock(mutex_);
  ++counters_.subsetHits;
}

std::uint64_t ResultStore::invalidateAll() {
  std::uint64_t generation = 0;
  {
    const std::lock_guard lock(mutex_);
    ++generation_;
    generation = generation_;
    // Eager-drop ready entries; pending ones are erased by their
    // leader's publish/fail generation check.
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.value != nullptr) {
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }
  ready_.notify_all();
  return generation;
}

ResultStore::Counters ResultStore::counters() const {
  const std::lock_guard lock(mutex_);
  return counters_;
}

std::size_t ResultStore::entries() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultStore::generation() const {
  const std::lock_guard lock(mutex_);
  return generation_;
}

std::shared_ptr<const StoredResult> ResultStore::findCoveringLocked(
    const Key& key) const {
  if (!key.ranges || key.base.empty()) return nullptr;
  for (const auto& [exact, entry] : entries_) {
    if (entry.value == nullptr || entry.generation != generation_) continue;
    if (!entry.ranges || entry.base != key.base) continue;
    if (exact == key.exact) continue;
    if (covers(*entry.ranges, *key.ranges)) return entry.value;
  }
  return nullptr;
}

void ResultStore::evictLocked() {
  while (true) {
    std::size_t ready = 0;
    auto oldest = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.value == nullptr) continue;  // never evict pending
      ++ready;
      if (oldest == entries_.end() ||
          it->second.lastUse < oldest->second.lastUse) {
        oldest = it;
      }
    }
    if (ready <= config_.maxEntries || oldest == entries_.end()) return;
    entries_.erase(oldest);
  }
}

}  // namespace memx::serve
