// Cross-request result cache with single-flight de-duplication.
//
// The store maps a canonical request key — workload identity + op +
// canonicalExploreKey(options) (+ search/window parameters) — to the
// immutable result of that computation. Guarantees:
//
//   * Single-flight: when N workers ask for the same missing key at
//     once, exactly one (the leader) computes; the rest block and
//     receive the leader's published value. A leader that fails wakes
//     one waiter to take over, so a transient failure never wedges the
//     slot.
//   * Generation-stamped invalidation: invalidateAll() bumps the store
//     generation; results computed against the old model can still be
//     returned to the request that computed them but are never cached
//     or served to later requests.
//   * Covering-range reuse: an explore-style lookup that misses exactly
//     may name a *parent* — a ready entry with the same base key (op +
//     workload + model) whose sweep bounds contain the request's. The
//     leader can then re-select from the parent's points instead of
//     re-simulating. The containment check here is a conservative
//     filter; the server verifies every sweep key against the parent
//     before trusting it.
//
// Values are shared_ptr<const ...>: once published they are immutable
// and may be read by any number of workers concurrently (which is what
// forced ExplorationResult::find to become thread-safe).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/search/nsga.hpp"

namespace memx::serve {

/// One cached computation: exactly one member is set, by op kind.
struct StoredResult {
  std::shared_ptr<const ExplorationResult> explore;
  std::shared_ptr<const search::SearchResult> search;
};

class ResultStore {
public:
  struct Config {
    /// Ready entries kept; least-recently-used beyond this are evicted.
    std::size_t maxEntries = 256;
  };

  /// Lookup identity. `base`/`ranges` are only consulted for covering
  /// reuse and may be empty/absent for ops where that cannot apply.
  struct Key {
    std::string exact;  ///< full canonical request key
    std::string base;   ///< exact minus the sweep bounds
    std::optional<ExploreRanges> ranges;
  };

  struct Counters {
    std::uint64_t hits = 0;        ///< exact ready hits (incl. waiters)
    std::uint64_t misses = 0;      ///< full computations
    std::uint64_t subsetHits = 0;  ///< served by re-selecting from a parent
  };

  /// What a lookup resolved to. Exactly one of:
  ///   * `value` set: exact hit, use it directly.
  ///   * `leader` true: the caller owns the computation and MUST call
  ///     publish() or fail() with `generation`. `parent` (possibly
  ///     null) is a covering candidate to re-select from.
  struct Outcome {
    std::shared_ptr<const StoredResult> value;
    std::shared_ptr<const StoredResult> parent;
    bool leader = false;
    std::uint64_t generation = 0;
  };

  ResultStore() : ResultStore(Config{}) {}
  explicit ResultStore(Config config) : config_(config) {}

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Resolve `key`, blocking while another worker computes it.
  [[nodiscard]] Outcome get(const Key& key);

  /// Install the leader's value. Returns false (and caches nothing)
  /// when the store was invalidated since the matching get(); the
  /// caller's value is still valid for its own response.
  bool publish(const std::string& exactKey, std::uint64_t generation,
               std::shared_ptr<const StoredResult> value);

  /// Abandon a leadership claim after a failed computation; one waiter
  /// (if any) takes over as the new leader.
  void fail(const std::string& exactKey, std::uint64_t generation) noexcept;

  /// Count a leader's outcome against the hit/miss telemetry. (The
  /// store cannot tell a full computation from a parent re-selection —
  /// only the leader knows whether the parent actually covered.)
  void countMiss() noexcept;
  void countSubsetHit() noexcept;

  /// Drop every cached result (model changed). Pending computations
  /// finish but publish as no-ops. Returns the new generation.
  std::uint64_t invalidateAll();

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t generation() const;

private:
  struct Entry {
    std::shared_ptr<const StoredResult> value;  ///< null while pending
    std::uint64_t generation = 0;
    std::string base;
    std::optional<ExploreRanges> ranges;
    std::uint64_t lastUse = 0;
  };

  [[nodiscard]] std::shared_ptr<const StoredResult> findCoveringLocked(
      const Key& key) const;
  void evictLocked();

  const Config config_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::string, Entry> entries_;
  std::uint64_t generation_ = 0;
  std::uint64_t tick_ = 0;
  Counters counters_;
};

}  // namespace memx::serve
