// Minimal strict JSON tree for the serve protocol.
//
// Requests arrive as newline-delimited JSON from untrusted clients, so
// the parser is strict RFC 8259 (no trailing commas, no comments, full
// escape handling including surrogate pairs), bounds nesting depth, and
// reports the byte offset of every syntax error — a malformed request
// must come back as a diagnostic, never as UB or a crash. Numbers parse
// through std::from_chars and serialize through the classic locale, so
// the daemon behaves identically under any LC_NUMERIC.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace memx::serve {

/// Thrown on malformed JSON (parse) and kind mismatches (accessors).
class JsonError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// One JSON value. Objects keep sorted key order (std::map), which
/// makes serialized responses deterministic.
class JsonValue {
public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  /// Any arithmetic type lands in the Number kind (stored as double;
  /// integers beyond 2^53 lose exactness, like everywhere in JSON).
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  JsonValue(T n) : value_(static_cast<double>(n)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  /// Strict parse of exactly one JSON document (trailing garbage is an
  /// error). Throws JsonError naming the byte offset.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const noexcept {
    return static_cast<Kind>(value_.index());
  }
  [[nodiscard]] bool isNull() const noexcept { return kind() == Kind::Null; }
  [[nodiscard]] bool isBool() const noexcept { return kind() == Kind::Bool; }
  [[nodiscard]] bool isNumber() const noexcept {
    return kind() == Kind::Number;
  }
  [[nodiscard]] bool isString() const noexcept {
    return kind() == Kind::String;
  }
  [[nodiscard]] bool isArray() const noexcept { return kind() == Kind::Array; }
  [[nodiscard]] bool isObject() const noexcept {
    return kind() == Kind::Object;
  }

  /// Checked accessors; throw JsonError on a kind mismatch.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] const Object& asObject() const;
  [[nodiscard]] Object& asObject();

  /// Integer view of a Number: must be integral and within [0, max].
  [[nodiscard]] std::uint64_t asUnsigned(std::uint64_t max) const;

  /// Serialize compactly (no whitespace). Numbers round-trip (%.17g
  /// equivalent); integral values within 2^53 print without exponent or
  /// decimal point. Locale-independent.
  [[nodiscard]] std::string dump() const;

private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace memx::serve
