// Exploration-as-a-service: a long-running sweep server.
//
// The server reads newline-delimited JSON requests from an input
// stream, routes them through a bounded job queue to a worker pool,
// and writes one JSON response line per request (in completion order;
// clients correlate by the echoed "id"). All exploration goes through
// the existing library entry points — Explorer::explore, searchPareto,
// exploreTrace — so a served response is bit-identical to the same
// call made directly.
//
// Concurrency and caching:
//   * Every request gets its own obs::Recorder and its own Explorer;
//     nothing request-scoped is shared, so two interleaved requests
//     can never bleed counters or spans into each other's RunReport.
//   * Completed results live in a ResultStore keyed by a canonical
//     hash of (workload, config space, model, backend): identical
//     requests hit cache, concurrent identical requests compute once
//     (single-flight), and a narrower explore request re-selects from
//     a cached wider sweep instead of re-simulating.
//   * The queue bound is the backpressure valve: a full queue blocks
//     the reader, which stops consuming input.
//
// Lifecycle: an "op":"shutdown" request (or requestDrain(), e.g. from
// a SIGINT handler) starts a graceful drain — requests already being
// computed finish and respond normally, requests still queued receive
// a clean shutdown error, then run() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "memx/serve/protocol.hpp"
#include "memx/serve/result_store.hpp"

namespace memx::serve {

struct ServerOptions {
  /// Worker threads; 0 = hardware concurrency (clamped to [1, 8]).
  unsigned workers = 0;
  /// Job-queue bound: requests admitted but not yet picked up. When
  /// full, the reader blocks (backpressure) instead of buffering.
  std::size_t queueCapacity = 64;
  /// Request lines longer than this are rejected with a diagnostic
  /// (the offending line is consumed, the connection keeps going).
  std::size_t maxRequestBytes = std::size_t{1} << 20;
  ResultStore::Config store;
  /// Test/telemetry hook: runs on the worker thread immediately before
  /// a job is processed. A blocking hook deterministically holds that
  /// job in-flight (the lifecycle tests use this to pin workers while
  /// they assert backpressure and drain behavior).
  std::function<void(const Request&)> onJobStart;
};

/// Whole-lifetime server telemetry (the "server" half of op:stats).
struct ServerStats {
  std::atomic<std::uint64_t> requests{0};     ///< lines consumed
  std::atomic<std::uint64_t> responsesOk{0};  ///< "ok":true lines
  std::atomic<std::uint64_t> responsesError{0};
  std::atomic<std::uint64_t> drained{0};  ///< queued jobs shed at drain
};

class Server {
public:
  explicit Server(ServerOptions options = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serve until EOF, an "op":"shutdown" request, or requestDrain().
  /// Blocking; returns the number of requests consumed. One run() at a
  /// time per Server (the store persists across runs).
  std::uint64_t run(std::istream& in, std::ostream& out);

  /// Process one request line synchronously and return the response
  /// line (no trailing newline). This is the worker code path without
  /// the queue: tests and the in-process client use it directly.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// Begin a graceful drain of a concurrent run() (async-signal
  /// friendly: just sets flags). Idempotent; no-op when not serving.
  void requestDrain() noexcept {
    drainRequested_.store(true, std::memory_order_relaxed);
    shedQueued_.store(true, std::memory_order_relaxed);
  }

  /// True once a drain has begun (shutdown op or requestDrain()): any
  /// job still queued will be shed. Lets tests and embedders sequence
  /// against the drain without polling the output stream.
  [[nodiscard]] bool draining() const noexcept {
    return shedQueued_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ResultStore& store() noexcept { return store_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] unsigned workerCount() const noexcept;

private:
  /// Dispatch one parsed request to its handler; never throws (errors
  /// become "ok":false responses).
  [[nodiscard]] JsonValue processValue(const Request& request);

  JsonValue handleExplore(const Request& request);
  JsonValue handleSearch(const Request& request);
  JsonValue handleTrace(const Request& request);
  [[nodiscard]] JsonValue statsValue() const;

  ServerOptions options_;
  ResultStore store_;
  ServerStats stats_;
  /// Stop reading input (shutdown op or signal).
  std::atomic<bool> drainRequested_{false};
  /// Answer still-queued jobs with a shutdown error instead of
  /// computing them (set on shutdown/drain, not on plain EOF: EOF
  /// means "no more input", queued work still completes).
  std::atomic<bool> shedQueued_{false};
};

}  // namespace memx::serve
