#include "memx/serve/json.hpp"

#include <charconv>
#include <cmath>

#include "memx/util/numeric_io.hpp"

namespace memx::serve {

namespace {

// Nesting bound: a hostile request of 1 MiB of '[' must not overflow
// the stack of a recursive-descent parser.
constexpr int kMaxDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("JSON error at byte " + std::to_string(pos_) + ": " +
                    what);
  }

  [[nodiscard]] bool atEnd() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skipWs() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expectLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
    }
    pos_ += word.size();
  }

  JsonValue parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skipWs();
    switch (peek()) {
      case 'n':
        expectLiteral("null");
        return JsonValue(nullptr);
      case 't':
        expectLiteral("true");
        return JsonValue(true);
      case 'f':
        expectLiteral("false");
        return JsonValue(false);
      case '"':
        return JsonValue(parseString());
      case '[':
        return parseArray(depth);
      case '{':
        return parseObject(depth);
      default:
        return parseNumber();
    }
  }

  JsonValue parseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parseValue(depth + 1));
      skipWs();
      const char c = take();
      if (c == ']') return JsonValue(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  JsonValue parseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skipWs();
      if (peek() != '"') fail("expected string key in object");
      std::string key = parseString();
      skipWs();
      if (take() != ':') {
        --pos_;
        fail("expected ':' after object key");
      }
      if (members.contains(key)) {
        fail("duplicate object key \"" + key + "\"");
      }
      members.emplace(std::move(key), parseValue(depth + 1));
      skipWs();
      const char c = take();
      if (c == '}') return JsonValue(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  [[nodiscard]] unsigned hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      unsigned digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
      value = value * 16 + digit;
    }
    return value;
  }

  void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("unpaired surrogate in \\u escape");
            }
            const unsigned low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail("invalid escape character");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && text_[pos_] == '-') ++pos_;
    // Integer part: JSON forbids leading zeros ("01") and a bare "-".
    if (atEnd()) fail("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      std::size_t digits = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++digits;
      }
      if (digits == 0) fail("invalid number: missing fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      std::size_t digits = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++digits;
      }
      if (digits == 0) fail("invalid number: missing exponent digits");
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size() ||
        !std::isfinite(value)) {
      fail("number out of range");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dumpString(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const auto uc = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (uc < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[uc >> 4];
          out += kHex[uc & 0xF];
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void dumpNumber(std::string& out, double v) {
  // 2^53: the largest range where every integer is exact in a double.
  constexpr double kIntExact = 9007199254740992.0;
  if (v == 0.0) {
    out += '0';
    return;
  }
  if (std::nearbyint(v) == v && std::abs(v) <= kIntExact) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  out += memx::formatDouble17(v);
}

void dumpValue(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out += "null";
      break;
    case JsonValue::Kind::Bool:
      out += v.asBool() ? "true" : "false";
      break;
    case JsonValue::Kind::Number:
      dumpNumber(out, v.asNumber());
      break;
    case JsonValue::Kind::String:
      dumpString(out, v.asString());
      break;
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.asArray()) {
        if (!first) out += ',';
        first = false;
        dumpValue(out, item);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.asObject()) {
        if (!first) out += ',';
        first = false;
        dumpString(out, key);
        out += ':';
        dumpValue(out, value);
      }
      out += '}';
      break;
    }
  }
}

[[noreturn]] void kindMismatch(const char* wanted) {
  throw JsonError(std::string("JSON value is not ") + wanted);
}

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

bool JsonValue::asBool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  kindMismatch("a boolean");
}

double JsonValue::asNumber() const {
  if (const double* n = std::get_if<double>(&value_)) return *n;
  kindMismatch("a number");
}

const std::string& JsonValue::asString() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  kindMismatch("a string");
}

const JsonValue::Array& JsonValue::asArray() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  kindMismatch("an array");
}

const JsonValue::Object& JsonValue::asObject() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  kindMismatch("an object");
}

JsonValue::Object& JsonValue::asObject() {
  if (Object* o = std::get_if<Object>(&value_)) return *o;
  kindMismatch("an object");
}

std::uint64_t JsonValue::asUnsigned(std::uint64_t max) const {
  const double n = asNumber();
  if (n < 0.0 || std::nearbyint(n) != n) {
    throw JsonError("JSON number is not a non-negative integer");
  }
  if (n > 9007199254740992.0 || static_cast<std::uint64_t>(n) > max) {
    throw JsonError("JSON integer exceeds allowed maximum " +
                    std::to_string(max));
  }
  return static_cast<std::uint64_t>(n);
}

std::string JsonValue::dump() const {
  std::string out;
  dumpValue(out, *this);
  return out;
}

}  // namespace memx::serve
