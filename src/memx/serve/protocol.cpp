#include "memx/serve/protocol.hpp"

#include <limits>

#include "memx/cachesim/cache_config.hpp"

namespace memx::serve {

namespace {

constexpr std::uint64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

[[noreturn]] void badField(const std::string& field, const std::string& why) {
  throw ServeError("request field '" + field + "': " + why);
}

/// Strict object walker: every key must be consumed by a handler.
class Fields {
public:
  Fields(const JsonValue& value, std::string path)
      : path_(std::move(path)) {
    if (!value.isObject()) {
      badField(path_, "must be a JSON object");
    }
    object_ = &value.asObject();
  }

  [[nodiscard]] const JsonValue* get(const std::string& key) {
    consumed_.push_back(key);
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
  }

  /// Call after all get()s: rejects any key no handler asked for.
  void finish() const {
    for (const auto& [key, value] : *object_) {
      bool known = false;
      for (const std::string& c : consumed_) {
        if (c == key) {
          known = true;
          break;
        }
      }
      if (!known) {
        badField(path_.empty() ? key : path_ + "." + key, "unknown field");
      }
    }
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  const JsonValue::Object* object_;
  std::string path_;
  std::vector<std::string> consumed_;
};

[[nodiscard]] std::string fieldPath(const Fields& fields,
                                    const std::string& key) {
  return fields.path().empty() ? key : fields.path() + "." + key;
}

[[nodiscard]] std::string requireString(Fields& fields,
                                        const JsonValue& value,
                                        const std::string& key) {
  if (!value.isString()) badField(fieldPath(fields, key), "must be a string");
  return value.asString();
}

[[nodiscard]] bool requireBool(Fields& fields, const JsonValue& value,
                               const std::string& key) {
  if (!value.isBool()) badField(fieldPath(fields, key), "must be a boolean");
  return value.asBool();
}

[[nodiscard]] std::uint64_t requireUnsigned(Fields& fields,
                                            const JsonValue& value,
                                            const std::string& key,
                                            std::uint64_t max) {
  if (!value.isNumber()) badField(fieldPath(fields, key), "must be a number");
  try {
    return value.asUnsigned(max);
  } catch (const JsonError& e) {
    badField(fieldPath(fields, key), e.what());
  }
}

[[nodiscard]] double requireFinite(Fields& fields, const JsonValue& value,
                                   const std::string& key) {
  if (!value.isNumber()) badField(fieldPath(fields, key), "must be a number");
  return value.asNumber();  // parser already guarantees finite
}

void parseRanges(const JsonValue& value, ExploreRanges& ranges) {
  Fields fields(value, "options.ranges");
  const auto u32 = [&](const char* key, std::uint32_t& out) {
    if (const JsonValue* v = fields.get(key)) {
      out = static_cast<std::uint32_t>(requireUnsigned(fields, *v, key, kU32Max));
    }
  };
  u32("on_chip_bytes", ranges.onChipBytes);
  u32("min_cache_bytes", ranges.minCacheBytes);
  u32("max_cache_bytes", ranges.maxCacheBytes);
  u32("min_line_bytes", ranges.minLineBytes);
  u32("max_line_bytes", ranges.maxLineBytes);
  u32("max_associativity", ranges.maxAssociativity);
  u32("max_tiling", ranges.maxTiling);
  if (const JsonValue* v = fields.get("sweep_associativity")) {
    ranges.sweepAssociativity = requireBool(fields, *v, "sweep_associativity");
  }
  if (const JsonValue* v = fields.get("sweep_tiling")) {
    ranges.sweepTiling = requireBool(fields, *v, "sweep_tiling");
  }
  fields.finish();
}

void parseOptions(const JsonValue& value, ExploreOptions& options) {
  Fields fields(value, "options");
  if (const JsonValue* v = fields.get("em_nj")) {
    options.energy.emNj = requireFinite(fields, *v, "em_nj");
  }
  if (const JsonValue* v = fields.get("leakage_pj")) {
    options.energy.leakagePjPerBytePerCycle =
        requireFinite(fields, *v, "leakage_pj");
  }
  if (const JsonValue* v = fields.get("optimize_layout")) {
    options.optimizeLayout = requireBool(fields, *v, "optimize_layout");
  }
  if (const JsonValue* v = fields.get("measure_bus")) {
    options.measureBusActivity = requireBool(fields, *v, "measure_bus");
  }
  if (const JsonValue* v = fields.get("write_energy")) {
    options.includeWriteEnergy = requireBool(fields, *v, "write_energy");
  }
  if (const JsonValue* v = fields.get("write_policy")) {
    const std::string name = requireString(fields, *v, "write_policy");
    if (name == "write-back") {
      options.writePolicy = WritePolicy::WriteBack;
    } else if (name == "write-through") {
      options.writePolicy = WritePolicy::WriteThrough;
    } else {
      badField("options.write_policy",
               "expected \"write-back\" or \"write-through\"");
    }
  }
  if (const JsonValue* v = fields.get("replacement")) {
    const std::string name = requireString(fields, *v, "replacement");
    if (name == "LRU") {
      options.replacement = ReplacementPolicy::LRU;
    } else if (name == "FIFO") {
      options.replacement = ReplacementPolicy::FIFO;
    } else if (name == "Random") {
      options.replacement = ReplacementPolicy::Random;
    } else if (name == "TreePLRU") {
      options.replacement = ReplacementPolicy::TreePLRU;
    } else {
      badField("options.replacement",
               "expected \"LRU\", \"FIFO\", \"Random\" or \"TreePLRU\"");
    }
  }
  if (const JsonValue* v = fields.get("backend")) {
    const std::string name = requireString(fields, *v, "backend");
    try {
      options.backend = parseSweepBackend(name);
    } catch (const std::exception& e) {
      badField("options.backend", e.what());
    }
  }
  if (const JsonValue* v = fields.get("ranges")) {
    parseRanges(*v, options.ranges);
  }
  fields.finish();
}

void parseSelection(const JsonValue& value, Request& request) {
  Fields fields(value, "selection");
  if (const JsonValue* v = fields.get("metric")) {
    const std::string name = requireString(fields, *v, "metric");
    if (name == "min_energy") {
      request.metric = SelectionMetric::MinEnergy;
    } else if (name == "min_cycles") {
      request.metric = SelectionMetric::MinCycles;
    } else if (name == "min_edp") {
      request.metric = SelectionMetric::MinEdp;
    } else {
      badField("selection.metric",
               "expected \"min_energy\", \"min_cycles\" or \"min_edp\"");
    }
  }
  if (const JsonValue* v = fields.get("cycle_bound")) {
    request.cycleBound = requireFinite(fields, *v, "cycle_bound");
  }
  if (const JsonValue* v = fields.get("energy_bound")) {
    request.energyBound = requireFinite(fields, *v, "energy_bound");
  }
  fields.finish();
}

void parseSearch(const JsonValue& value, Request& request) {
  Fields fields(value, "search");
  if (const JsonValue* v = fields.get("seed")) {
    request.search.seed = requireUnsigned(fields, *v, "seed", kU64Max);
  }
  if (const JsonValue* v = fields.get("pop")) {
    request.search.populationSize =
        static_cast<std::uint32_t>(requireUnsigned(fields, *v, "pop", kU32Max));
  }
  if (const JsonValue* v = fields.get("gens")) {
    request.search.generations = static_cast<std::uint32_t>(
        requireUnsigned(fields, *v, "gens", kU32Max));
  }
  if (const JsonValue* v = fields.get("budget")) {
    request.search.maxEvaluations =
        requireUnsigned(fields, *v, "budget", kU64Max);
  }
  if (const JsonValue* v = fields.get("joint")) {
    request.jointSpace = requireBool(fields, *v, "joint");
  }
  fields.finish();
}

void parseWindow(const JsonValue& value, TraceWindow& window) {
  Fields fields(value, "window");
  if (const JsonValue* v = fields.get("skip")) {
    window.skip = requireUnsigned(fields, *v, "skip", kU64Max);
  }
  if (const JsonValue* v = fields.get("warmup")) {
    window.warmup = requireUnsigned(fields, *v, "warmup", kU64Max);
  }
  if (const JsonValue* v = fields.get("limit")) {
    window.limit = requireUnsigned(fields, *v, "limit", kU64Max);
  }
  fields.finish();
}

}  // namespace

std::string_view toString(RequestOp op) noexcept {
  switch (op) {
    case RequestOp::Explore: return "explore";
    case RequestOp::Search: return "search";
    case RequestOp::Trace: return "trace";
    case RequestOp::Stats: return "stats";
    case RequestOp::Invalidate: return "invalidate";
    case RequestOp::Ping: return "ping";
    case RequestOp::Shutdown: return "shutdown";
  }
  return "unknown";
}

RequestOp parseRequestOp(const std::string& name) {
  if (name == "explore") return RequestOp::Explore;
  if (name == "search") return RequestOp::Search;
  if (name == "trace") return RequestOp::Trace;
  if (name == "stats") return RequestOp::Stats;
  if (name == "invalidate") return RequestOp::Invalidate;
  if (name == "ping") return RequestOp::Ping;
  if (name == "shutdown") return RequestOp::Shutdown;
  throw ServeError("unknown op '" + name +
                   "'; expected explore, search, trace, stats, invalidate, "
                   "ping or shutdown");
}

Request parseRequest(const JsonValue& root) {
  Request request;
  Fields fields(root, "");

  if (const JsonValue* v = fields.get("id")) request.id = *v;

  const JsonValue* op = fields.get("op");
  if (op == nullptr) badField("op", "required");
  request.op = parseRequestOp(requireString(fields, *op, "op"));

  if (const JsonValue* v = fields.get("workload")) {
    request.workload = requireString(fields, *v, "workload");
  }
  if (const JsonValue* v = fields.get("kernel_src")) {
    request.kernelSource = requireString(fields, *v, "kernel_src");
  }
  if (const JsonValue* v = fields.get("trace")) {
    request.tracePath = requireString(fields, *v, "trace");
  }
  if (const JsonValue* v = fields.get("window")) {
    parseWindow(*v, request.window);
  }
  if (const JsonValue* v = fields.get("options")) {
    parseOptions(*v, request.options);
  }
  if (const JsonValue* v = fields.get("selection")) {
    parseSelection(*v, request);
  }
  if (const JsonValue* v = fields.get("search")) {
    parseSearch(*v, request);
  }
  if (const JsonValue* v = fields.get("include_points")) {
    request.includePoints = requireBool(fields, *v, "include_points");
  }
  if (const JsonValue* v = fields.get("include_report")) {
    request.includeReport = requireBool(fields, *v, "include_report");
  }
  fields.finish();

  // Cross-field requirements, by op.
  const bool kernelOp =
      request.op == RequestOp::Explore || request.op == RequestOp::Search;
  if (kernelOp) {
    if (request.workload.empty() && request.kernelSource.empty()) {
      throw ServeError(std::string(toString(request.op)) +
                       " needs 'workload' or 'kernel_src'");
    }
    if (!request.workload.empty() && !request.kernelSource.empty()) {
      throw ServeError("'workload' and 'kernel_src' are mutually exclusive");
    }
  }
  if (request.op == RequestOp::Trace && request.tracePath.empty()) {
    throw ServeError("trace needs 'trace' (a .din[.gz] path)");
  }
  return request;
}

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string cacheKeyDigest(std::string_view canonicalKey) {
  constexpr char kHex[] = "0123456789abcdef";
  const std::uint64_t hash = fnv1a64(canonicalKey);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(hash >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace memx::serve
