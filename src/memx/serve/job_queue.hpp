// Bounded MPMC queue for serve jobs.
//
// The reader thread pushes parsed requests, the worker pool pops them.
// The bound is the server's backpressure mechanism: when workers fall
// behind, push() blocks the reader, which stops consuming the input
// stream, which pushes the stall back to the client instead of growing
// an unbounded backlog. close() wakes everyone; remaining items stay
// poppable so a draining server can still answer queued requests (with
// a shutdown error or a real result, the server decides).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "memx/util/assert.hpp"

namespace memx::serve {

template <typename T>
class JobQueue {
public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {
    MEMX_EXPECTS(capacity > 0, "job queue capacity must be positive");
  }

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue. Returns
  /// false without enqueuing when the queue was closed first.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    notFull_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    notEmpty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and
  /// empty. Returns false only in the latter case. A closed queue
  /// still delivers its remaining items.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    notFull_.notify_one();
    return true;
  }

  /// Stop accepting pushes and wake every waiter. Idempotent.
  void close() {
    {
      const std::lock_guard lock(mutex_);
      closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace memx::serve
