#include "memx/serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include "memx/core/selection.hpp"
#include "memx/core/trace_explorer.hpp"
#include "memx/kernels/registry.hpp"
#include "memx/loopir/kernel_parser.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/report/result_io.hpp"
#include "memx/search/front_io.hpp"
#include "memx/serve/job_queue.hpp"
#include "memx/trace/file_source.hpp"
#include "memx/util/numeric_io.hpp"

namespace memx::serve {

namespace {

/// A workload plus its cache-key identity. The identity must pin the
/// *content*: two identities are equal only if the workload's reference
/// stream is byte-identical, which is what lets results be shared
/// across requests.
struct ResolvedKernel {
  Kernel kernel;
  std::string identity;
};

[[nodiscard]] ResolvedKernel resolveKernel(const Request& request) {
  if (!request.kernelSource.empty()) {
    return {parseKernel(request.kernelSource, "<inline>"),
            "src:" + cacheKeyDigest(request.kernelSource)};
  }
  const std::string& name = request.workload;
  if (name.find('/') != std::string::npos ||
      (name.size() > 3 && name.substr(name.size() - 3) == ".mx")) {
    // A kernel file: key by content, not by path — the file may change
    // between requests, and a stale path-keyed entry would silently
    // serve the old kernel's sweep.
    std::ifstream file(name);
    if (!file) throw ServeError("cannot open kernel file " + name);
    std::ostringstream text;
    text << file.rdbuf();
    return {parseKernel(text.str(), name),
            "src:" + cacheKeyDigest(text.str())};
  }
  return {registeredKernel(name), "kernel:" + name};
}

/// Trace files are keyed by (path, size, mtime): re-simulating a
/// multi-GB trace to hash its content would defeat the cache, so a
/// rewritten-in-place file with identical size and timestamp is the
/// accepted blind spot (op:invalidate exists for exactly that).
[[nodiscard]] std::string traceIdentity(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw ServeError("cannot stat trace file " + path);
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) throw ServeError("cannot stat trace file " + path);
  return "trace:" + path + ":" + std::to_string(size) + ":" +
         std::to_string(mtime.time_since_epoch().count());
}

[[nodiscard]] std::string windowKey(const TraceWindow& window) {
  return "skip=" + std::to_string(window.skip) +
         ";warmup=" + std::to_string(window.warmup) +
         ";limit=" + std::to_string(window.limit) + ";";
}

[[nodiscard]] std::string searchKey(const Request& request) {
  const search::SearchOptions& s = request.search;
  return "seed=" + std::to_string(s.seed) +
         ";pop=" + std::to_string(s.populationSize) +
         ";gens=" + std::to_string(s.generations) +
         ";tourn=" + std::to_string(s.tournamentSize) +
         ";cx=" + formatDouble17(s.crossoverRate) +
         ";mut=" + formatDouble17(s.mutationRate) +
         ";budget=" + std::to_string(s.maxEvaluations) +
         ";finish=" + (s.finishExhaustively ? "1" : "0") +
         ";joint=" + (request.jointSpace ? "1" : "0") + ";";
}

[[nodiscard]] JsonValue pointValue(const DesignPoint& point) {
  JsonValue::Object o;
  o.emplace("label", point.label());
  o.emplace("cache", point.key.cacheBytes);
  o.emplace("line", point.key.lineBytes);
  o.emplace("assoc", point.key.associativity);
  o.emplace("tiling", point.key.tiling);
  o.emplace("accesses", point.accesses);
  o.emplace("miss_rate", point.missRate);
  o.emplace("cycles", point.cycles);
  o.emplace("energy_nj", point.energyNj);
  return JsonValue(std::move(o));
}

[[nodiscard]] std::optional<DesignPoint> selectPoint(
    const Request& request, const ExplorationResult& result) {
  switch (request.metric) {
    case SelectionMetric::MinEnergy:
      return bestUnderBounds(result.points, request.cycleBound,
                             request.energyBound);
    case SelectionMetric::MinCycles:
      return minCyclePoint(result.points, request.energyBound);
    case SelectionMetric::MinEdp:
      return minEdpPoint(result.points);
  }
  return std::nullopt;
}

[[nodiscard]] JsonValue reportValue(const obs::Recorder& recorder) {
  std::ostringstream os;
  recorder.report().writeJson(os);
  // Round-tripping through the parser embeds the report as a JSON
  // subtree (not an escaped string) and doubles as a validity check.
  return JsonValue::parse(os.str());
}

[[nodiscard]] JsonValue errorValue(const JsonValue& id, std::string_view op,
                                   const std::string& message) {
  JsonValue::Object o;
  o.emplace("id", id);
  o.emplace("ok", false);
  if (!op.empty()) o.emplace("op", std::string(op));
  o.emplace("error", message);
  return JsonValue(std::move(o));
}

/// Best-effort id extraction for error responses on requests that
/// failed validation (or never parsed at all).
[[nodiscard]] JsonValue idOf(const JsonValue& root) noexcept {
  if (!root.isObject()) return JsonValue(nullptr);
  const auto& object = root.asObject();
  const auto it = object.find("id");
  return it == object.end() ? JsonValue(nullptr) : it->second;
}

/// Read one '\n'-terminated line with a hard length cap. Returns false
/// on EOF with nothing read. A line over the cap is consumed to its end
/// and reported via `overflowed` so the server can reject it without
/// buffering it.
bool readLineBounded(std::istream& in, std::string& line, std::size_t cap,
                     bool& overflowed) {
  line.clear();
  overflowed = false;
  char c = 0;
  bool any = false;
  while (in.get(c)) {
    any = true;
    if (c == '\n') return true;
    if (line.size() >= cap) {
      overflowed = true;
      continue;  // keep consuming to the newline, discard the excess
    }
    line += c;
  }
  return any;
}

struct StoreUse {
  std::shared_ptr<const StoredResult> value;
  bool cached = false;  ///< served from a ready entry
  bool subset = false;  ///< re-selected from a covering parent
};

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), store_(options_.store) {}

unsigned Server::workerCount() const noexcept {
  if (options_.workers != 0) return options_.workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

JsonValue Server::handleExplore(const Request& request) {
  obs::Recorder recorder;
  StoreUse use;
  JsonValue::Object response;
  {
    const obs::ScopedSpan span(&recorder, "serve.request");
    const ResolvedKernel resolved = resolveKernel(request);
    // Constructing the Explorer validates the options; do it before
    // claiming store leadership so an invalid request never leaves a
    // pending slot behind.
    Explorer explorer(request.options);
    explorer.setRecorder(&recorder);

    ResultStore::Key key;
    key.base = "explore|" + resolved.identity + "|" +
               canonicalModelKey(request.options) + "|";
    key.exact = key.base + canonicalRangesKey(request.options.ranges);
    key.ranges = request.options.ranges;

    const ResultStore::Outcome outcome = store_.get(key);
    if (outcome.value != nullptr) {
      use = {outcome.value, true, false};
      recorder.counter("serve.store_hits").add();
    } else {
      try {
        if (outcome.parent != nullptr && outcome.parent->explore != nullptr) {
          // Covering-range candidate: verify every sweep key of this
          // request exists in the parent, then re-select instead of
          // re-simulating. Bit-identical by the canonical-key contract
          // (equal model keys => equal points per sweep key).
          const obs::ScopedSpan select(&recorder, "serve.reselect");
          const ExplorationResult& parent = *outcome.parent->explore;
          const std::vector<ConfigKey> keys = explorer.sweepKeys();
          auto sliced = std::make_shared<ExplorationResult>();
          sliced->workload = resolved.kernel.name;
          sliced->points.reserve(keys.size());
          bool complete = true;
          for (const ConfigKey& k : keys) {
            const DesignPoint* p = parent.find(k);
            if (p == nullptr) {
              complete = false;
              break;
            }
            sliced->points.push_back(*p);
          }
          if (complete) {
            sliced->buildIndex();
            auto stored = std::make_shared<StoredResult>();
            stored->explore = std::move(sliced);
            use = {stored, false, true};
            recorder.counter("serve.store_subset_hits").add();
            store_.countSubsetHit();
            store_.publish(key.exact, outcome.generation, std::move(stored));
          }
        }
        if (use.value == nullptr) {
          const obs::ScopedSpan compute(&recorder, "serve.compute");
          auto computed =
              std::make_shared<ExplorationResult>(explorer.explore(resolved.kernel));
          computed->buildIndex();
          auto stored = std::make_shared<StoredResult>();
          stored->explore = std::move(computed);
          use = {stored, false, false};
          recorder.counter("serve.store_misses").add();
          store_.countMiss();
          store_.publish(key.exact, outcome.generation, std::move(stored));
        }
      } catch (...) {
        store_.fail(key.exact, outcome.generation);
        throw;
      }
    }

    const ExplorationResult& result = *use.value->explore;
    response.emplace("ok", true);
    response.emplace("workload", result.workload);
    response.emplace("cached", use.cached);
    response.emplace("subset", use.subset);
    response.emplace("cache_key", cacheKeyDigest(key.exact));
    response.emplace("points", result.points.size());
    const std::optional<DesignPoint> selected = selectPoint(request, result);
    response.emplace("selected",
                     selected ? pointValue(*selected) : JsonValue(nullptr));
    if (request.includePoints) {
      response.emplace("csv", toCsvString(result));
    }
  }
  if (request.includeReport) {
    response.emplace("report", reportValue(recorder));
  }
  return JsonValue(std::move(response));
}

JsonValue Server::handleSearch(const Request& request) {
  obs::Recorder recorder;
  StoreUse use;
  JsonValue::Object response;
  {
    const obs::ScopedSpan span(&recorder, "serve.request");
    const ResolvedKernel resolved = resolveKernel(request);
    Explorer explorer(request.options);
    explorer.setRecorder(&recorder);

    search::SearchOptions searchOptions = request.search;
    if (request.jointSpace) {
      // Mirror the CLI's --joint space: every policy pair, both layout
      // choices, and an optional L2 at 4x the largest L1 capacity.
      search::DesignSpaceOptions space;
      space.ranges = request.options.ranges;
      space.replacements = {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
                            ReplacementPolicy::Random,
                            ReplacementPolicy::TreePLRU};
      space.writePolicies = {WritePolicy::WriteBack,
                             WritePolicy::WriteThrough};
      space.sweepLayout = true;
      space.l2CapacityBytes = {4 * space.ranges.maxCacheBytes};
      searchOptions.space = space;
    }

    ResultStore::Key key;
    key.exact = "search|" + resolved.identity + "|" +
                canonicalExploreKey(request.options) + "|" +
                searchKey(request);

    const ResultStore::Outcome outcome = store_.get(key);
    if (outcome.value != nullptr) {
      use = {outcome.value, true, false};
      recorder.counter("serve.store_hits").add();
    } else {
      try {
        const obs::ScopedSpan compute(&recorder, "serve.compute");
        auto stored = std::make_shared<StoredResult>();
        stored->search = std::make_shared<const search::SearchResult>(
            explorer.searchPareto(resolved.kernel, searchOptions));
        use = {stored, false, false};
        recorder.counter("serve.store_misses").add();
        store_.countMiss();
        store_.publish(key.exact, outcome.generation, std::move(stored));
      } catch (...) {
        store_.fail(key.exact, outcome.generation);
        throw;
      }
    }

    const search::SearchResult& result = *use.value->search;
    response.emplace("ok", true);
    response.emplace("workload", result.workload);
    response.emplace("cached", use.cached);
    response.emplace("cache_key", cacheKeyDigest(key.exact));
    response.emplace("front", result.front.size());
    response.emplace("evaluations", result.evaluations);
    response.emplace("cache_hits", result.cacheHits);
    response.emplace("generations", result.generations);
    response.emplace("space_size", result.spaceSize);
    response.emplace("exact", result.exact);
    if (request.includePoints) {
      std::vector<search::FrontRow> rows;
      rows.reserve(result.front.size());
      for (const search::SearchPoint& p : result.front) {
        rows.push_back(search::toFrontRow(result.workload, p));
      }
      std::ostringstream csv;
      search::writeFrontCsv(csv, rows);
      response.emplace("csv", csv.str());
    }
  }
  if (request.includeReport) {
    response.emplace("report", reportValue(recorder));
  }
  return JsonValue(std::move(response));
}

JsonValue Server::handleTrace(const Request& request) {
  obs::Recorder recorder;
  StoreUse use;
  JsonValue::Object response;
  {
    const obs::ScopedSpan span(&recorder, "serve.request");
    Explorer optionsCheck(request.options);  // validate before leadership

    ResultStore::Key key;
    key.exact = "tracex|" + traceIdentity(request.tracePath) + "|" +
                canonicalExploreKey(request.options) + "|" +
                windowKey(request.window);

    const ResultStore::Outcome outcome = store_.get(key);
    if (outcome.value != nullptr) {
      use = {outcome.value, true, false};
      recorder.counter("serve.store_hits").add();
    } else {
      try {
        const obs::ScopedSpan compute(&recorder, "serve.compute");
        FileTraceSource source(request.tracePath);
        auto computed = std::make_shared<ExplorationResult>(
            exploreTrace(request.tracePath, source, request.options,
                         request.window, kDefaultTraceChunkRefs, &recorder));
        computed->buildIndex();
        auto stored = std::make_shared<StoredResult>();
        stored->explore = std::move(computed);
        use = {stored, false, false};
        recorder.counter("serve.store_misses").add();
        store_.countMiss();
        store_.publish(key.exact, outcome.generation, std::move(stored));
      } catch (...) {
        store_.fail(key.exact, outcome.generation);
        throw;
      }
    }

    const ExplorationResult& result = *use.value->explore;
    response.emplace("ok", true);
    response.emplace("workload", result.workload);
    response.emplace("cached", use.cached);
    response.emplace("subset", false);
    response.emplace("cache_key", cacheKeyDigest(key.exact));
    response.emplace("points", result.points.size());
    const std::optional<DesignPoint> selected = selectPoint(request, result);
    response.emplace("selected",
                     selected ? pointValue(*selected) : JsonValue(nullptr));
    if (request.includePoints) {
      response.emplace("csv", toCsvString(result));
    }
  }
  if (request.includeReport) {
    response.emplace("report", reportValue(recorder));
  }
  return JsonValue(std::move(response));
}

JsonValue Server::statsValue() const {
  const ResultStore::Counters counters = store_.counters();
  JsonValue::Object storeStats;
  storeStats.emplace("hits", counters.hits);
  storeStats.emplace("misses", counters.misses);
  storeStats.emplace("subset_hits", counters.subsetHits);
  storeStats.emplace("entries", store_.entries());
  storeStats.emplace("generation", store_.generation());
  JsonValue::Object serverStats;
  serverStats.emplace("workers", workerCount());
  serverStats.emplace("queue_capacity", options_.queueCapacity);
  serverStats.emplace("requests", stats_.requests.load());
  serverStats.emplace("ok", stats_.responsesOk.load());
  serverStats.emplace("errors", stats_.responsesError.load());
  serverStats.emplace("drained", stats_.drained.load());
  JsonValue::Object o;
  o.emplace("ok", true);
  o.emplace("store", JsonValue(std::move(storeStats)));
  o.emplace("server", JsonValue(std::move(serverStats)));
  return JsonValue(std::move(o));
}

JsonValue Server::processValue(const Request& request) {
  JsonValue value;
  try {
    switch (request.op) {
      case RequestOp::Explore:
        value = handleExplore(request);
        break;
      case RequestOp::Search:
        value = handleSearch(request);
        break;
      case RequestOp::Trace:
        value = handleTrace(request);
        break;
      case RequestOp::Stats:
        value = statsValue();
        break;
      case RequestOp::Invalidate: {
        JsonValue::Object o;
        o.emplace("ok", true);
        o.emplace("generation", store_.invalidateAll());
        value = JsonValue(std::move(o));
        break;
      }
      case RequestOp::Ping: {
        JsonValue::Object o;
        o.emplace("ok", true);
        value = JsonValue(std::move(o));
        break;
      }
      case RequestOp::Shutdown: {
        requestDrain();
        JsonValue::Object o;
        o.emplace("ok", true);
        o.emplace("draining", true);
        value = JsonValue(std::move(o));
        break;
      }
    }
  } catch (const std::exception& e) {
    return errorValue(request.id, toString(request.op), e.what());
  }
  JsonValue::Object& object = value.asObject();
  object.emplace("id", request.id);
  object.emplace("op", std::string(toString(request.op)));
  return value;
}

std::string Server::handleLine(const std::string& line) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  JsonValue response;
  if (line.size() > options_.maxRequestBytes) {
    response = errorValue(JsonValue(nullptr), "",
                          "request exceeds " +
                              std::to_string(options_.maxRequestBytes) +
                              " bytes");
  } else {
    JsonValue root;
    bool parsed = false;
    try {
      root = JsonValue::parse(line);
      parsed = true;
      response = processValue(parseRequest(root));
    } catch (const std::exception& e) {
      response = errorValue(parsed ? idOf(root) : JsonValue(nullptr), "",
                            e.what());
    }
  }
  const auto& object = response.asObject();
  const auto ok = object.find("ok");
  if (ok != object.end() && ok->second.isBool() && ok->second.asBool()) {
    stats_.responsesOk.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.responsesError.fetch_add(1, std::memory_order_relaxed);
  }
  return response.dump();
}

std::uint64_t Server::run(std::istream& in, std::ostream& out) {
  drainRequested_.store(false, std::memory_order_relaxed);
  shedQueued_.store(false, std::memory_order_relaxed);

  JobQueue<Request> queue(options_.queueCapacity);
  std::mutex writeMutex;
  const auto respond = [&](const JsonValue& response) {
    const auto& object = response.asObject();
    const auto ok = object.find("ok");
    if (ok != object.end() && ok->second.isBool() && ok->second.asBool()) {
      stats_.responsesOk.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.responsesError.fetch_add(1, std::memory_order_relaxed);
    }
    const std::string line = response.dump();
    const std::lock_guard lock(writeMutex);
    out << line << '\n' << std::flush;
  };

  std::vector<std::thread> workers;
  const unsigned count = workerCount();
  workers.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers.emplace_back([&] {
      Request job;
      while (queue.pop(job)) {
        if (shedQueued_.load(std::memory_order_relaxed)) {
          stats_.drained.fetch_add(1, std::memory_order_relaxed);
          respond(errorValue(job.id, toString(job.op),
                             "server shutting down"));
          continue;
        }
        if (options_.onJobStart) options_.onJobStart(job);
        respond(processValue(job));
      }
    });
  }

  std::uint64_t consumed = 0;
  std::string line;
  bool overflowed = false;
  while (!drainRequested_.load(std::memory_order_relaxed) &&
         readLineBounded(in, line, options_.maxRequestBytes, overflowed)) {
    // Blank lines are keep-alive noise, not requests.
    if (!overflowed && line.empty()) continue;
    ++consumed;
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    if (overflowed) {
      respond(errorValue(JsonValue(nullptr), "",
                         "request exceeds " +
                             std::to_string(options_.maxRequestBytes) +
                             " bytes"));
      continue;
    }
    Request request;
    JsonValue root;
    bool parsed = false;
    try {
      root = JsonValue::parse(line);
      parsed = true;
      request = parseRequest(root);
    } catch (const std::exception& e) {
      respond(errorValue(parsed ? idOf(root) : JsonValue(nullptr), "",
                         e.what()));
      continue;
    }
    // Control ops answer from the reader thread: they must stay
    // responsive (and shutdown must stop the reader) even when every
    // worker is busy and the queue is full.
    if (request.op == RequestOp::Shutdown) {
      respond(processValue(request));
      break;
    }
    if (request.op == RequestOp::Ping || request.op == RequestOp::Stats ||
        request.op == RequestOp::Invalidate) {
      respond(processValue(request));
      continue;
    }
    if (!queue.push(std::move(request))) break;  // closed by a drain
  }

  // Input ended or drain began. On a drain, queued-but-unstarted jobs
  // are shed with a clean error (shedQueued_); on plain EOF they run
  // to completion — close() lets workers finish the backlog either way.
  queue.close();
  for (std::thread& worker : workers) worker.join();
  return consumed;
}

}  // namespace memx::serve
