// Serve wire protocol: newline-delimited JSON requests and responses.
//
// One request per line, one response line per request, in completion
// (not submission) order; the client correlates by the echoed "id".
// See docs/SERVING.md for the field reference. Parsing is strict:
// unknown fields, wrong types, and out-of-domain values are rejected
// with a diagnostic naming the field — a typo'd option must fail loudly
// rather than silently explore the wrong space.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "memx/core/explorer.hpp"
#include "memx/search/nsga.hpp"
#include "memx/serve/json.hpp"
#include "memx/trace/trace_source.hpp"

namespace memx::serve {

/// Thrown on any malformed or invalid request; the message becomes the
/// "error" field of the error response.
class ServeError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

enum class RequestOp : std::uint8_t {
  Explore,     ///< kernel sweep via Explorer::explore
  Search,      ///< NSGA-II front via Explorer::searchPareto
  Trace,       ///< fixed-trace sweep via exploreTrace
  Stats,       ///< store/server telemetry snapshot
  Invalidate,  ///< drop every cached result (model changed)
  Ping,        ///< liveness check
  Shutdown,    ///< graceful drain: finish in-flight, stop reading
};

[[nodiscard]] std::string_view toString(RequestOp op) noexcept;
/// Parse "explore"/"search"/"trace"/"stats"/"invalidate"/"ping"/
/// "shutdown"; throws ServeError on anything else.
[[nodiscard]] RequestOp parseRequestOp(const std::string& name);

/// Which scalar the response's "selected" point minimizes.
enum class SelectionMetric : std::uint8_t { MinEnergy, MinCycles, MinEdp };

/// One parsed request.
struct Request {
  JsonValue id;  ///< echoed verbatim in the response (null when absent)
  RequestOp op = RequestOp::Ping;
  std::string workload;      ///< kernel name or .mx path (explore/search)
  std::string kernelSource;  ///< inline kernel text, alternative to workload
  std::string tracePath;     ///< .din[.gz] path (trace op)
  TraceWindow window;        ///< trace op only
  ExploreOptions options;
  SelectionMetric metric = SelectionMetric::MinEnergy;
  std::optional<double> cycleBound;
  std::optional<double> energyBound;
  search::SearchOptions search;  ///< search op only
  bool jointSpace = false;       ///< search op: widen to the joint space
  bool includePoints = false;    ///< embed the full result CSV
  bool includeReport = false;    ///< embed the per-request RunReport JSON
};

/// Parse and validate one request object. Throws ServeError (and lets
/// JsonError from malformed JSON propagate from JsonValue::parse — the
/// server folds both into error responses).
[[nodiscard]] Request parseRequest(const JsonValue& root);

/// FNV-1a over `text`; the short display form of canonical cache keys.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

/// 16-hex-digit form of fnv1a64 (the response's "cache_key").
[[nodiscard]] std::string cacheKeyDigest(std::string_view canonicalKey);

}  // namespace memx::serve
