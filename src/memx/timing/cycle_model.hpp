// The paper's processor-cycle model (Section 2.2).
//
// Taken from Hennessy & Patterson (2nd ed.):
//  - cycles per hit: 1, 1.1, 1.12, 1.14 for 1/2/4/8-way set associativity,
//  - cycles per miss: 40, 40, 42, 44, 48, 56, 72 for line sizes
//    4, 8, 16, 32, 64, 128, 256 bytes,
//  - cycles = hit_rate * trip_count * cycles_per_hit
//           + miss_rate * trip_count * (tiling_size + cycles_per_miss).
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"

namespace memx {

/// Lookup tables of the cycle model; defaults are the paper's values.
struct TimingParams {
  /// cycles per hit, indexed by log2(associativity) (1,2,4,8-way).
  std::vector<double> hitCyclesByAssoc = {1.0, 1.1, 1.12, 1.14};
  /// cycles per miss, indexed by log2(lineBytes) - 2 (4...256 bytes).
  std::vector<double> missCyclesByLine = {40, 40, 42, 44, 48, 56, 72};

  void validate() const;
};

/// Hit/miss cycle split of one run.
struct CycleBreakdown {
  double hitCycles = 0.0;
  double missCycles = 0.0;
  [[nodiscard]] double total() const noexcept {
    return hitCycles + missCycles;
  }
};

/// Evaluates the cycle model for power-of-two associativities (<= 8)
/// and line sizes in [4, 256] bytes.
class CycleModel {
public:
  CycleModel() = default;
  explicit CycleModel(TimingParams params);

  /// Cycles spent per hit at the given associativity. Throws for
  /// non-power-of-two or > 8-way (the paper caps S at 8).
  [[nodiscard]] double cyclesPerHit(std::uint32_t associativity) const;

  /// Cycles spent per miss at the given line size. Throws outside the
  /// tabulated [4, 256]-byte power-of-two range.
  [[nodiscard]] double cyclesPerMiss(std::uint32_t lineBytes) const;

  /// The paper's cycle formula. `tilingSize` is the B term added to the
  /// per-miss penalty (B = 1 for untiled code).
  [[nodiscard]] double cycles(std::uint64_t accesses, double missRate,
                              const CacheConfig& config,
                              std::uint32_t tilingSize = 1) const;

  /// Same, split into hit/miss components.
  [[nodiscard]] CycleBreakdown breakdown(std::uint64_t accesses,
                                         double missRate,
                                         const CacheConfig& config,
                                         std::uint32_t tilingSize = 1) const;

  /// Evaluate directly from simulator statistics.
  [[nodiscard]] double cycles(const CacheStats& stats,
                              const CacheConfig& config,
                              std::uint32_t tilingSize = 1) const;

  [[nodiscard]] const TimingParams& params() const noexcept {
    return params_;
  }

private:
  TimingParams params_;
};

}  // namespace memx
