#include "memx/timing/cycle_model.hpp"

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

void TimingParams::validate() const {
  MEMX_EXPECTS(!hitCyclesByAssoc.empty(), "hit-cycle table is empty");
  MEMX_EXPECTS(!missCyclesByLine.empty(), "miss-cycle table is empty");
  for (double v : hitCyclesByAssoc) {
    MEMX_EXPECTS(v > 0, "hit cycles must be positive");
  }
  for (double v : missCyclesByLine) {
    MEMX_EXPECTS(v > 0, "miss cycles must be positive");
  }
}

CycleModel::CycleModel(TimingParams params) : params_(std::move(params)) {
  params_.validate();
}

double CycleModel::cyclesPerHit(std::uint32_t associativity) const {
  MEMX_EXPECTS(isPow2(associativity),
               "associativity must be a power of two");
  const unsigned idx = log2Exact(associativity);
  MEMX_EXPECTS(idx < params_.hitCyclesByAssoc.size(),
               "associativity exceeds the tabulated range (max 8-way)");
  return params_.hitCyclesByAssoc[idx];
}

double CycleModel::cyclesPerMiss(std::uint32_t lineBytes) const {
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");
  MEMX_EXPECTS(lineBytes >= 4, "line size below the tabulated range");
  const unsigned idx = log2Exact(lineBytes) - 2;
  MEMX_EXPECTS(idx < params_.missCyclesByLine.size(),
               "line size exceeds the tabulated range (max 256 bytes)");
  return params_.missCyclesByLine[idx];
}

CycleBreakdown CycleModel::breakdown(std::uint64_t accesses,
                                     double missRate,
                                     const CacheConfig& config,
                                     std::uint32_t tilingSize) const {
  MEMX_EXPECTS(missRate >= 0.0 && missRate <= 1.0,
               "miss rate must be in [0,1]");
  MEMX_EXPECTS(tilingSize >= 1, "tiling size must be at least 1");
  const double n = static_cast<double>(accesses);
  CycleBreakdown b;
  b.hitCycles = (1.0 - missRate) * n * cyclesPerHit(config.associativity);
  b.missCycles =
      missRate * n * (tilingSize + cyclesPerMiss(config.lineBytes));
  return b;
}

double CycleModel::cycles(std::uint64_t accesses, double missRate,
                          const CacheConfig& config,
                          std::uint32_t tilingSize) const {
  return breakdown(accesses, missRate, config, tilingSize).total();
}

double CycleModel::cycles(const CacheStats& stats, const CacheConfig& config,
                          std::uint32_t tilingSize) const {
  return cycles(stats.accesses(), stats.missRate(), config, tilingSize);
}

}  // namespace memx
