#include "memx/layout/offchip_assign.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/loopir/ref_classes.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

namespace {

/// Cap on the number of references simulated when verifying a candidate
/// layout (conflicts in lockstep access patterns show up immediately).
constexpr std::size_t kVerifyRefCap = 8192;

/// First iteration vector of the nest (lower bounds, evaluated outermost
/// inwards so clamped bounds also work).
std::vector<std::int64_t> iterationOrigin(const LoopNest& nest) {
  std::vector<std::int64_t> iv;
  iv.reserve(nest.depth());
  for (std::size_t k = 0; k < nest.depth(); ++k) {
    iv.push_back(nest.loop(k).lower.evalLower(
        std::span<const std::int64_t>(iv.data(), iv.size())));
  }
  return iv;
}

/// Lowest address any access of `group` touches at the iteration origin,
/// under a candidate placement.
std::uint64_t leaderAddress(const Kernel& kernel, const RefGroup& group,
                            const ArrayPlacement& placement,
                            std::span<const std::int64_t> origin) {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::int64_t> subs;
  for (const std::size_t idx : group.accessIndices) {
    const ArrayAccess& acc = kernel.body[idx];
    subs.clear();
    for (const AffineExpr& e : acc.subscripts) subs.push_back(e.eval(origin));
    best = std::min(best, placement.address(subs));
  }
  return best;
}

/// Row offset used to order and space classes: the first non-inner-varying
/// constant (e.g. -1 for Compress's a[i-1][*] class), or 0.
std::int64_t rowOffsetOf(const RefGroup& g) {
  return g.outerConstants.empty() ? 0 : g.outerConstants.front();
}

struct Candidate {
  std::vector<ArrayPlacement> placements;
  std::vector<std::uint64_t> slots;  // per group
  std::uint64_t padding = 0;
};

/// Build one candidate layout for a given uniform row shift `d` (in cache
/// lines per row step). Returns nullopt when the leader constraints
/// cannot be met.
std::optional<Candidate> tryShift(
    const Kernel& kernel, const CacheConfig& cache,
    const RefAnalysis& analysis, std::span<const std::int64_t> origin,
    std::uint64_t d, std::int64_t innermostStep, std::uint64_t startAddr) {
  const std::uint64_t L = cache.lineBytes;
  const std::uint64_t modulus = cache.numSets();

  Candidate cand;
  cand.placements.resize(kernel.arrays.size());
  cand.slots.assign(analysis.groups.size(), 0);

  std::uint64_t nextFree = startAddr;
  std::uint64_t slotCursor = 0;

  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    const ArrayDecl& decl = kernel.arrays[a];

    std::vector<std::size_t> groupsOn;
    for (std::size_t g = 0; g < analysis.groups.size(); ++g) {
      if (analysis.groups[g].arrayIndex == a) groupsOn.push_back(g);
    }
    std::sort(groupsOn.begin(), groupsOn.end(),
              [&](std::size_t x, std::size_t y) {
                const RefGroup& gx = analysis.groups[x];
                const RefGroup& gy = analysis.groups[y];
                if (rowOffsetOf(gx) != rowOffsetOf(gy)) {
                  return rowOffsetOf(gx) < rowOffsetOf(gy);
                }
                return gx.minFlatOffset < gy.minFlatOffset;
              });

    ArrayPlacement placement;
    placement.pitches = rowMajorPitches(decl);

    if (groupsOn.empty()) {
      placement.baseAddr = nextFree;
      nextFree += placement.spanBytes(decl);
      cand.placements[a] = std::move(placement);
      continue;
    }

    // Pitch: smallest line-aligned pitch >= tight whose per-row slot
    // advance equals d (keeps all arrays shifting uniformly).
    if (decl.rank() >= 2) {
      const std::uint64_t tightRow =
          static_cast<std::uint64_t>(decl.extents[decl.rank() - 1]) *
          decl.elemBytes;
      std::uint64_t pitch = alignUp(tightRow, L);
      while ((pitch / L) % modulus != d % modulus) {
        pitch += L;
      }
      placement.pitches = rowMajorPitches(decl, pitch);
    }

    // Slot targets: rows spaced d apart, relative to this array's cursor.
    const std::int64_t minRow = rowOffsetOf(analysis.groups[groupsOn[0]]);
    std::uint64_t arraySpanSlots = 0;
    for (const std::size_t g : groupsOn) {
      const RefGroup& grp = analysis.groups[g];
      const std::uint64_t rel =
          static_cast<std::uint64_t>(rowOffsetOf(grp) - minRow) * d;
      cand.slots[g] = (slotCursor + rel) % modulus;
      arraySpanSlots = std::max(
          arraySpanSlots,
          rel + linesLive(grp, cache.lineBytes, decl.elemBytes,
                          innermostStep));
    }

    // Base: stagger the array so every class leader lands on its slot.
    bool placed = false;
    const std::uint64_t alignedBase = alignUp(nextFree, L);
    for (std::uint64_t k = 0; k < modulus && !placed; ++k) {
      placement.baseAddr = alignedBase + k * L;
      bool ok = true;
      for (const std::size_t g : groupsOn) {
        const std::uint64_t leader =
            leaderAddress(kernel, analysis.groups[g], placement, origin);
        if ((leader / L) % modulus != cand.slots[g]) {
          ok = false;
          break;
        }
      }
      placed = ok;
    }
    if (!placed) return std::nullopt;

    slotCursor = (slotCursor + arraySpanSlots) % modulus;
    const std::uint64_t span = placement.spanBytes(decl);
    cand.padding += (placement.baseAddr - nextFree) +
                    (span - decl.sizeBytes());
    nextFree = placement.baseAddr + span;
    cand.placements[a] = std::move(placement);
  }
  return cand;
}

/// Conflict misses of `layout` on a bounded probe of the kernel's trace.
std::uint64_t probeConflicts(const Kernel& kernel,
                             const CacheConfig& cache,
                             const MemoryLayout& layout) {
  const Trace probe = generateTracePrefix(kernel, layout, kVerifyRefCap);
  MissClassifier classifier(cache);
  classifier.run(probe);
  return classifier.breakdown().conflict;
}

AssignmentPlan tightFallback(const Kernel& kernel, std::uint64_t startAddr) {
  AssignmentPlan plan;
  plan.layout = MemoryLayout::tight(kernel, startAddr);
  plan.arrays.resize(kernel.arrays.size());
  std::uint64_t next = startAddr;
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    plan.arrays[a].baseAddr = next;
    plan.arrays[a].rowPitchBytes = 0;
    plan.arrays[a].paddingBytes = 0;
    plan.arrays[a].conflictFree = false;
    next += kernel.arrays[a].sizeBytes();
  }
  plan.complete = false;
  return plan;
}

}  // namespace

std::uint64_t AssignmentPlan::totalPaddingBytes() const {
  std::uint64_t total = 0;
  for (const ArrayAssignment& a : arrays) total += a.paddingBytes;
  return total;
}

MemoryLayout sequentialLayout(const Kernel& kernel,
                              std::uint64_t startAddr) {
  return MemoryLayout::tight(kernel, startAddr);
}

AssignmentPlan assignConflictFree(const Kernel& kernel,
                                  const CacheConfig& cache,
                                  std::uint64_t startAddr,
                                  const Kernel* probeKernel) {
  kernel.validate();
  cache.validate();
  const Kernel& probe = probeKernel ? *probeKernel : kernel;

  const RefAnalysis analysis = analyzeReferences(kernel);
  const std::int64_t step =
      kernel.nest.depth() == 0
          ? 1
          : kernel.nest.loop(kernel.nest.depth() - 1).step;
  const auto origin = iterationOrigin(kernel.nest);
  const std::uint64_t modulus = cache.numSets();

  // Below the Section-3 minimum size no placement can keep every class
  // resident; conflicts (or capacity thrash) are unavoidable. The tight
  // live-lines bound is used so exact fits (e.g. Compress in 4 lines)
  // still qualify.
  const bool feasible =
      minLiveLines(kernel, cache.lineBytes) <= cache.numLines();

  // Enumerate uniform row shifts, cheapest padding first, and accept the
  // first candidate the probe simulation certifies conflict-free.
  std::vector<std::uint64_t> shifts(
      std::min<std::uint64_t>(modulus, 32));
  std::iota(shifts.begin(), shifts.end(), 0);

  struct Scored {
    std::uint64_t shift = 0;
    Candidate cand;
  };
  std::vector<Scored> scored;
  for (const std::uint64_t d : shifts) {
    auto cand = tryShift(kernel, cache, analysis, origin, d, step,
                         startAddr);
    if (cand) scored.push_back(Scored{d, std::move(*cand)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& x, const Scored& y) {
              return x.cand.padding < y.cand.padding;
            });

  std::optional<Scored> fallback;
  std::uint64_t fallbackConflicts =
      std::numeric_limits<std::uint64_t>::max();
  for (Scored& s : scored) {
    if (!feasible) break;
    MemoryLayout layout{std::vector<ArrayPlacement>(s.cand.placements)};
    const std::uint64_t conflicts = probeConflicts(probe, cache, layout);
    if (conflicts == 0) {
      AssignmentPlan plan;
      plan.layout = std::move(layout);
      plan.groupSlots = s.cand.slots;
      plan.complete = true;
      plan.arrays.resize(kernel.arrays.size());
      std::uint64_t next = startAddr;
      for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
        const ArrayDecl& decl = kernel.arrays[a];
        const ArrayPlacement& p = plan.layout.placement(a);
        plan.arrays[a].baseAddr = p.baseAddr;
        plan.arrays[a].rowPitchBytes =
            decl.rank() >= 2 ? p.pitches[decl.rank() - 2] : 0;
        plan.arrays[a].paddingBytes =
            (p.baseAddr - next) + (p.spanBytes(decl) - decl.sizeBytes());
        plan.arrays[a].conflictFree = true;
        next = p.baseAddr + p.spanBytes(decl);
      }
      return plan;
    }
    if (conflicts < fallbackConflicts) {
      fallbackConflicts = conflicts;
      fallback = std::move(s);
    }
  }

  // No certified layout: keep the least-conflicting candidate when one
  // exists (still often better than tight), flagged incomplete.
  if (fallback) {
    AssignmentPlan plan;
    plan.layout =
        MemoryLayout{std::vector<ArrayPlacement>(fallback->cand.placements)};
    plan.groupSlots = fallback->cand.slots;
    plan.complete = false;
    plan.arrays.resize(kernel.arrays.size());
    std::uint64_t next = startAddr;
    for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
      const ArrayDecl& decl = kernel.arrays[a];
      const ArrayPlacement& p = plan.layout.placement(a);
      plan.arrays[a].baseAddr = p.baseAddr;
      plan.arrays[a].rowPitchBytes =
          decl.rank() >= 2 ? p.pitches[decl.rank() - 2] : 0;
      plan.arrays[a].paddingBytes =
          (p.baseAddr - next) + (p.spanBytes(decl) - decl.sizeBytes());
      plan.arrays[a].conflictFree = false;
      next = p.baseAddr + p.spanBytes(decl);
    }
    return plan;
  }
  return tightFallback(kernel, startAddr);
}

}  // namespace memx
