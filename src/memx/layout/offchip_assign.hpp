// Conflict-avoiding off-chip data assignment (paper Section 4.1).
//
// Idea: for compatible (uniformly generated) reference classes, the cache
// line a class occupies is a pure function of the array base addresses and
// row pitches. Choosing those with a little padding staggers the classes
// into disjoint line slots, eliminating conflict misses entirely.
//
// Reproduces both paper examples:
//  * Compress (one array, two classes): row pitch padded from 32 to 36
//    bytes so rows i-1 and i land two lines apart in an 8-byte cache with
//    2-byte lines.
//  * Matrix addition (three arrays, one case): b placed at 38 and c at 76
//    so a/b/c start in cache lines 0/1/2.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/loopir/memory_layout.hpp"

namespace memx {

/// Placement decision for one array.
struct ArrayAssignment {
  std::uint64_t baseAddr = 0;
  std::uint64_t rowPitchBytes = 0;  ///< 0 = tight (no intra-array padding)
  std::uint64_t paddingBytes = 0;   ///< bytes wasted vs. tight placement
  bool conflictFree = false;  ///< all its classes hit their target slots
};

/// Result of the assignment algorithm.
struct AssignmentPlan {
  MemoryLayout layout;
  std::vector<ArrayAssignment> arrays;
  /// Cache-line slot assigned to each reference class (index-aligned with
  /// analyzeReferences(kernel).groups).
  std::vector<std::uint64_t> groupSlots;
  /// True when every class landed on its target slot.
  bool complete = false;
  /// Total padding inserted relative to tight placement.
  [[nodiscard]] std::uint64_t totalPaddingBytes() const;
};

/// The paper's unoptimized baseline: arrays packed back to back.
[[nodiscard]] MemoryLayout sequentialLayout(const Kernel& kernel,
                                            std::uint64_t startAddr = 0);

/// Compute a conflict-avoiding layout for `kernel` under `cache`.
/// The kernel must have constant loop bounds (the class analysis runs on
/// the untiled nest). When `probeKernel` is given, candidate layouts are
/// certified against *its* traversal instead — pass the tiled variant so
/// the padding also separates the classes a tile keeps live together.
/// Arrays that cannot be made conflict-free (cache too small, indirect
/// accesses) fall back to tight placement and are flagged.
[[nodiscard]] AssignmentPlan assignConflictFree(
    const Kernel& kernel, const CacheConfig& cache,
    std::uint64_t startAddr = 0, const Kernel* probeKernel = nullptr);

}  // namespace memx
