// Loop fusion.
//
// Two kernels with identical iteration spaces can be fused into one nest
// whose body runs both; arrays with the same name and shape are shared.
// Fusion converts inter-kernel reuse (producer writes an array, consumer
// reads it a whole kernel later) into intra-iteration reuse the cache
// can actually capture — the natural companion to the paper's tiling.
#pragma once

#include <utility>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// True when the two nests have identical depth, bounds and steps
/// (the structural legality precondition this transform checks; data
/// dependences are the caller's responsibility, as with tiling).
[[nodiscard]] bool sameIterationSpace(const Kernel& a, const Kernel& b);

/// Fuse `b` after `a` in one nest. Arrays are merged by (name, extents,
/// element size): an exact match is shared, a name collision with a
/// different shape throws. Requires sameIterationSpace(a, b) and
/// constant loop bounds.
[[nodiscard]] Kernel fuseKernels(const Kernel& a, const Kernel& b);

/// Loop distribution (fission), the inverse of fusion: split the body at
/// `splitIndex` into two kernels over the same nest (first gets body
/// accesses [0, splitIndex), second the rest). Arrays are shared by both
/// halves. Throws when either half would be empty.
[[nodiscard]] std::pair<Kernel, Kernel> distributeKernel(
    const Kernel& kernel, std::size_t splitIndex);

/// Distribution at `splitIndex` is legal iff no dependence runs from the
/// second statement group back to the first (those pairs would execute
/// in reverse order once all first-half iterations run before any
/// second-half iteration).
[[nodiscard]] bool distributionIsLegal(const Kernel& kernel,
                                       std::size_t splitIndex);

}  // namespace memx
