// Data-dependence analysis for loop transforms.
//
// The tiling/interchange/fusion transforms in this library are purely
// structural (they reorder a traversal for trace generation); a compiler
// would have to prove them legal first. This module computes dependence
// distance vectors between uniformly generated references and derives
// the classic legality predicates:
//
//  * rectangular tiling of a loop band is legal iff the band is fully
//    permutable — every dependence distance component in the band is
//    known and non-negative (Wolf-Lam),
//  * interchange is legal iff every permuted distance vector stays
//    lexicographically non-negative,
//  * fusion is legal iff the second kernel only consumes values the
//    first produced at the same or an earlier iteration.
//
// Solving H d = delta_c in general needs integer linear algebra; this
// implementation handles the common single-coefficient subscripts
// exactly and falls back to "unknown" (conservatively blocking the
// transform) otherwise.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// One component of a dependence distance vector.
struct DistanceComponent {
  /// Known distance in iterations, or nullopt for "unknown/any" (the
  /// direction-vector '*').
  std::optional<std::int64_t> value;

  [[nodiscard]] bool known() const noexcept { return value.has_value(); }
};

/// Kinds of data dependences.
enum class DepKind : std::uint8_t {
  Flow,    ///< write then read (true dependence)
  Anti,    ///< read then write
  Output,  ///< write then write
};

[[nodiscard]] std::string toString(DepKind k);

/// A dependence between two body accesses of one kernel.
struct Dependence {
  std::size_t srcAccess = 0;  ///< earlier access (body index)
  std::size_t dstAccess = 0;  ///< later access (body index)
  DepKind kind = DepKind::Flow;
  /// Distance per loop level (dst iteration minus src iteration).
  std::vector<DistanceComponent> distance;

  /// True when every component is known.
  [[nodiscard]] bool isDistanceVector() const noexcept;
  /// Lexicographic sign with unknowns treated pessimistically:
  /// returns false if the vector could be lexicographically negative.
  [[nodiscard]] bool lexNonNegative() const noexcept;
};

/// All loop-carried and loop-independent dependences of `kernel`
/// (pairs involving at least one write on the same array). Indirect
/// accesses yield all-unknown distances against every access of their
/// array.
[[nodiscard]] std::vector<Dependence> computeDependences(
    const Kernel& kernel);

/// Rectangular tiling of `levels` is legal (fully permutable band).
[[nodiscard]] bool tilingIsLegal(const Kernel& kernel,
                                 const std::vector<std::size_t>& levels);

/// tile2D legality shorthand (levels {0, 1}).
[[nodiscard]] bool tilingIsLegal(const Kernel& kernel);

/// Interchanging loops `a` and `b` keeps all dependences lexicographically
/// non-negative.
[[nodiscard]] bool interchangeIsLegal(const Kernel& kernel, std::size_t a,
                                      std::size_t b);

/// Fusing `second` after `first` (same iteration space) never makes the
/// fused body consume a value before it is produced.
[[nodiscard]] bool fusionIsLegal(const Kernel& first,
                                 const Kernel& second);

}  // namespace memx
