#include "memx/xform/fusion.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

bool boundsEqual(const LoopBound& x, const LoopBound& y) {
  return x.exprs == y.exprs;
}

}  // namespace

bool sameIterationSpace(const Kernel& a, const Kernel& b) {
  if (a.nest.depth() != b.nest.depth()) return false;
  for (std::size_t l = 0; l < a.nest.depth(); ++l) {
    const Loop& la = a.nest.loop(l);
    const Loop& lb = b.nest.loop(l);
    if (la.step != lb.step || !boundsEqual(la.lower, lb.lower) ||
        !boundsEqual(la.upper, lb.upper)) {
      return false;
    }
  }
  return true;
}

Kernel fuseKernels(const Kernel& a, const Kernel& b) {
  a.validate();
  b.validate();
  MEMX_EXPECTS(sameIterationSpace(a, b),
               "fusion requires identical iteration spaces");

  Kernel fused;
  fused.name = a.name + "+" + b.name;
  fused.nest = a.nest;
  fused.arrays = a.arrays;
  fused.body = a.body;

  // Merge b's arrays: share exact matches, append the rest.
  std::vector<std::size_t> remap(b.arrays.size());
  for (std::size_t i = 0; i < b.arrays.size(); ++i) {
    const ArrayDecl& decl = b.arrays[i];
    const auto it = std::find_if(
        fused.arrays.begin(), fused.arrays.end(),
        [&](const ArrayDecl& d) { return d.name == decl.name; });
    if (it == fused.arrays.end()) {
      remap[i] = fused.arrays.size();
      fused.arrays.push_back(decl);
    } else {
      MEMX_EXPECTS(it->extents == decl.extents &&
                       it->elemBytes == decl.elemBytes,
                   "array '" + decl.name +
                       "' has conflicting shapes in the fused kernels");
      remap[i] = static_cast<std::size_t>(it - fused.arrays.begin());
    }
  }

  for (ArrayAccess acc : b.body) {
    acc.arrayIndex = remap[acc.arrayIndex];
    fused.body.push_back(std::move(acc));
  }
  fused.validate();
  return fused;
}

std::pair<Kernel, Kernel> distributeKernel(const Kernel& kernel,
                                            std::size_t splitIndex) {
  kernel.validate();
  MEMX_EXPECTS(splitIndex > 0 && splitIndex < kernel.body.size(),
               "split must leave both halves non-empty");
  Kernel first = kernel;
  first.name = kernel.name + "_d1";
  first.body.assign(kernel.body.begin(),
                    kernel.body.begin() +
                        static_cast<std::ptrdiff_t>(splitIndex));
  Kernel second = kernel;
  second.name = kernel.name + "_d2";
  second.body.assign(kernel.body.begin() +
                         static_cast<std::ptrdiff_t>(splitIndex),
                     kernel.body.end());
  first.validate();
  second.validate();
  return {std::move(first), std::move(second)};
}

}  // namespace memx
