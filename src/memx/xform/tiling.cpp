#include "memx/xform/tiling.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

bool boundIsConstant(const LoopBound& b) {
  return b.exprs.size() == 1 && b.exprs[0].isConstant();
}

void requireRectangular(const Kernel& kernel, const char* what) {
  for (const Loop& l : kernel.nest.loops()) {
    MEMX_EXPECTS(boundIsConstant(l.lower) && boundIsConstant(l.upper),
                 std::string(what) + " requires constant loop bounds");
  }
}

/// Shift every induction-variable index in `e` by `shift`.
AffineExpr shifted(const AffineExpr& e, std::size_t shift) {
  AffineExpr out;
  out.constant = e.constant;
  out.coeffs.assign(e.coeffs.size() + shift, 0);
  for (std::size_t k = 0; k < e.coeffs.size(); ++k) {
    out.coeffs[k + shift] = e.coeffs[k];
  }
  return out;
}

/// Swap induction variables a and b in `e`.
AffineExpr swapped(const AffineExpr& e, std::size_t a, std::size_t b) {
  AffineExpr out = e;
  const std::size_t need = std::max(a, b) + 1;
  if (out.coeffs.size() < need) out.coeffs.resize(need, 0);
  std::swap(out.coeffs[a], out.coeffs[b]);
  return out;
}

}  // namespace

Kernel tileLoops(const Kernel& kernel, const std::vector<std::size_t>& levels,
                 std::int64_t tileSize) {
  kernel.validate();
  MEMX_EXPECTS(tileSize >= 1, "tile size must be at least 1");
  MEMX_EXPECTS(std::is_sorted(levels.begin(), levels.end()) &&
                   std::adjacent_find(levels.begin(), levels.end()) ==
                       levels.end(),
               "tile levels must be strictly increasing");
  MEMX_EXPECTS(levels.empty() || levels.back() < kernel.nest.depth(),
               "tile level out of range");
  requireRectangular(kernel, "tiling");

  const std::size_t shift = levels.size();
  std::vector<Loop> loops;
  loops.reserve(kernel.nest.depth() + shift);

  // Tile loops, hoisted to the front in the order given.
  for (std::size_t t = 0; t < levels.size(); ++t) {
    const Loop& orig = kernel.nest.loop(levels[t]);
    Loop tileLoop;
    tileLoop.name = orig.name + "_t";
    tileLoop.lower = orig.lower;  // constant; no remap needed
    tileLoop.upper = orig.upper;
    tileLoop.step = tileSize * orig.step;
    loops.push_back(std::move(tileLoop));
  }

  // Original loops, with tiled levels clamped to their tile.
  for (std::size_t l = 0; l < kernel.nest.depth(); ++l) {
    const Loop& orig = kernel.nest.loop(l);
    Loop nl;
    nl.name = orig.name;
    nl.step = orig.step;
    const auto it = std::find(levels.begin(), levels.end(), l);
    if (it != levels.end()) {
      const std::size_t tileDim =
          static_cast<std::size_t>(it - levels.begin());
      nl.lower = LoopBound(AffineExpr::var(tileDim));
      // min(tile + (B-1)*step, original upper)
      AffineExpr tileEnd = AffineExpr::var(tileDim).plusConstant(
          (tileSize - 1) * orig.step);
      nl.upper = LoopBound{std::move(tileEnd), orig.upper.exprs[0]};
    } else {
      nl.lower = orig.lower;
      nl.upper = orig.upper;
    }
    loops.push_back(std::move(nl));
  }

  Kernel out;
  out.name = kernel.name + "_tiled" + std::to_string(tileSize);
  out.arrays = kernel.arrays;
  out.nest = LoopNest(std::move(loops));
  out.body = kernel.body;
  for (ArrayAccess& acc : out.body) {
    for (AffineExpr& e : acc.subscripts) e = shifted(e, shift);
  }
  out.validate();
  return out;
}

Kernel tile2D(const Kernel& kernel, std::int64_t tileSize) {
  MEMX_EXPECTS(kernel.nest.depth() >= 2,
               "tile2D needs a nest of depth at least 2");
  return tileLoops(kernel, {0, 1}, tileSize);
}

Kernel skew(const Kernel& kernel, std::size_t target, std::size_t source,
            std::int64_t factor) {
  kernel.validate();
  MEMX_EXPECTS(target < kernel.nest.depth() &&
                   source < kernel.nest.depth(),
               "skew level out of range");
  MEMX_EXPECTS(source < target, "skew source must be an outer loop");
  requireRectangular(kernel, "skewing");

  std::vector<Loop> loops = kernel.nest.loops();
  Loop& t = loops[target];
  // Bounds become lo + f*s .. hi + f*s (affine in the source variable).
  for (AffineExpr& e : t.lower.exprs) {
    e = e.plus(AffineExpr::var(source, factor));
  }
  for (AffineExpr& e : t.upper.exprs) {
    e = e.plus(AffineExpr::var(source, factor));
  }

  Kernel out;
  out.name = kernel.name + "_skew";
  out.arrays = kernel.arrays;
  out.nest = LoopNest(std::move(loops));
  out.body = kernel.body;
  // Substitute t = t' - f*s in every subscript.
  for (ArrayAccess& acc : out.body) {
    for (AffineExpr& e : acc.subscripts) {
      const std::int64_t ct = e.coeff(target);
      if (ct == 0) continue;
      e = e.plus(AffineExpr::var(source, -factor * ct));
    }
  }
  out.validate();
  return out;
}

Kernel interchange(const Kernel& kernel, std::size_t a, std::size_t b) {
  kernel.validate();
  MEMX_EXPECTS(a < kernel.nest.depth() && b < kernel.nest.depth(),
               "interchange level out of range");
  requireRectangular(kernel, "interchange");

  std::vector<Loop> loops = kernel.nest.loops();
  std::swap(loops[a], loops[b]);

  Kernel out;
  out.name = kernel.name + "_ichg";
  out.arrays = kernel.arrays;
  out.nest = LoopNest(std::move(loops));
  out.body = kernel.body;
  for (ArrayAccess& acc : out.body) {
    for (AffineExpr& e : acc.subscripts) e = swapped(e, a, b);
  }
  out.validate();
  return out;
}

}  // namespace memx
