// Loop tiling (Section 4.2) and loop interchange.
//
// Tiling strip-mines the selected loops and hoists all tile loops to the
// front of the nest, producing the paper's Example 3(b) shape:
//
//   for ti = lo_i, hi_i, B        for i = lo_i, hi_i
//    for tj = lo_j, hi_j, B   <=   for j = lo_j, hi_j
//     for i = ti, min(ti+B-1, hi_i)    body
//      for j = tj, min(tj+B-1, hi_j)
//        body
//
// The transform is purely structural (we generate traces, not results), so
// no dependence legality checking is performed; the kernels it is applied
// to in this repository are all legally tileable.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Strip-mine each loop level in `levels` (indices into the original
/// nest, strictly increasing) with tile size `tileSize`, hoisting the tile
/// loops in front. Requires every loop bound in the kernel to be constant
/// (rectangular nest); throws otherwise. tileSize = 1 yields a nest that
/// traverses iterations in the original order.
[[nodiscard]] Kernel tileLoops(const Kernel& kernel,
                               const std::vector<std::size_t>& levels,
                               std::int64_t tileSize);

/// Tile the two outermost loops (the common case for the paper's 2-D
/// kernels); for deeper nests the remaining loops stay innermost.
[[nodiscard]] Kernel tile2D(const Kernel& kernel, std::int64_t tileSize);

/// Swap loop levels `a` and `b`. Requires constant bounds on all loops.
[[nodiscard]] Kernel interchange(const Kernel& kernel, std::size_t a,
                                 std::size_t b);

/// Skew loop `target` by `factor` times loop `source` (source must be an
/// outer loop): the new induction variable is t' = t + factor * s, its
/// bounds shift with s, and every subscript substitutes t = t' - f*s.
/// The traversal order (and hence the trace) is unchanged; what changes
/// is the dependence distances — d'_target = d_target + f * d_source —
/// which is exactly what makes wavefront stencils tileable (Wolf-Lam).
/// Requires constant bounds.
[[nodiscard]] Kernel skew(const Kernel& kernel, std::size_t target,
                          std::size_t source, std::int64_t factor);

}  // namespace memx
