#include "memx/xform/dependence.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/xform/fusion.hpp"

namespace memx {

namespace {

/// Distance solution between two accesses, or nullopt when they can
/// never touch the same element.
using MaybeDistance = std::optional<std::vector<DistanceComponent>>;

bool sameLinearPart(const ArrayAccess& a, const ArrayAccess& b) {
  if (a.subscripts.size() != b.subscripts.size()) return false;
  for (std::size_t r = 0; r < a.subscripts.size(); ++r) {
    const std::size_t n = std::max(a.subscripts[r].coeffs.size(),
                                   b.subscripts[r].coeffs.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (a.subscripts[r].coeff(k) != b.subscripts[r].coeff(k)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<DistanceComponent> allUnknown(std::size_t depth) {
  return std::vector<DistanceComponent>(depth);
}

/// Solve H d = cA - cB (d = iteration(B) - iteration(A) when B touches
/// the element A touched).
MaybeDistance solveDistance(const ArrayAccess& a, const ArrayAccess& b,
                            std::size_t depth) {
  if (!a.isAffine() || !b.isAffine()) return allUnknown(depth);
  if (!sameLinearPart(a, b)) return allUnknown(depth);

  std::vector<DistanceComponent> d(depth);
  std::vector<bool> pinned(depth, false);

  // Gauss-Seidel style substitution: re-scan the rows until no new loop
  // variable gets pinned. Handles skewed subscripts like a[i][j - i]
  // whose rows involve several loops.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < a.subscripts.size(); ++r) {
      const AffineExpr& ea = a.subscripts[r];
      const std::int64_t delta = ea.constant - b.subscripts[r].constant;

      std::int64_t residual = delta;
      std::vector<std::size_t> unknowns;
      for (std::size_t k = 0; k < depth; ++k) {
        const std::int64_t coeff = ea.coeff(k);
        if (coeff == 0) continue;
        if (pinned[k]) {
          residual -= coeff * *d[k].value;
        } else {
          unknowns.push_back(k);
        }
      }
      if (unknowns.empty()) {
        if (residual != 0) return std::nullopt;  // never the same element
        continue;
      }
      if (unknowns.size() == 1) {
        const std::size_t k = unknowns.front();
        const std::int64_t coeff = ea.coeff(k);
        if (residual % coeff != 0) return std::nullopt;
        d[k].value = residual / coeff;
        pinned[k] = true;
        changed = true;
      }
    }
  }
  return d;
}

/// Lexicographic class of a fully-known vector: -1, 0, +1.
int lexSign(const std::vector<DistanceComponent>& d) {
  for (const DistanceComponent& c : d) {
    if (!c.known()) return -2;  // caller must handle unknowns
    if (*c.value > 0) return 1;
    if (*c.value < 0) return -1;
  }
  return 0;
}

std::vector<DistanceComponent> negated(
    const std::vector<DistanceComponent>& d) {
  std::vector<DistanceComponent> out = d;
  for (DistanceComponent& c : out) {
    if (c.known()) c.value = -*c.value;
  }
  return out;
}

DepKind kindOf(bool srcWrites, bool dstWrites) {
  if (srcWrites && dstWrites) return DepKind::Output;
  return srcWrites ? DepKind::Flow : DepKind::Anti;
}

}  // namespace

std::string toString(DepKind k) {
  switch (k) {
    case DepKind::Flow:
      return "flow";
    case DepKind::Anti:
      return "anti";
    case DepKind::Output:
      return "output";
  }
  return "?";
}

bool Dependence::isDistanceVector() const noexcept {
  return std::all_of(distance.begin(), distance.end(),
                     [](const DistanceComponent& c) { return c.known(); });
}

bool Dependence::lexNonNegative() const noexcept {
  for (const DistanceComponent& c : distance) {
    if (!c.known()) return false;  // could be negative
    if (*c.value > 0) return true;
    if (*c.value < 0) return false;
  }
  return true;  // all zero
}

std::vector<Dependence> computeDependences(const Kernel& kernel) {
  kernel.validate();
  const std::size_t depth = kernel.nest.depth();
  std::vector<Dependence> deps;

  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    for (std::size_t j = i; j < kernel.body.size(); ++j) {
      const ArrayAccess& a = kernel.body[i];
      const ArrayAccess& b = kernel.body[j];
      if (a.arrayIndex != b.arrayIndex) continue;
      const bool aWrites = a.type == AccessType::Write;
      const bool bWrites = b.type == AccessType::Write;
      if (!aWrites && !bWrites) continue;
      if (i == j && !aWrites) continue;

      const MaybeDistance solved = solveDistance(a, b, depth);
      if (!solved) continue;  // provably independent

      const int sign = lexSign(*solved);
      Dependence dep;
      if (sign == 1 || (sign == 0 && i <= j)) {
        // B's iteration is later (or same iteration, body order a->b).
        dep.srcAccess = i;
        dep.dstAccess = j;
        dep.kind = kindOf(aWrites, bWrites);
        dep.distance = *solved;
      } else if (sign == -1 || sign == 0) {
        dep.srcAccess = j;
        dep.dstAccess = i;
        dep.kind = kindOf(bWrites, aWrites);
        dep.distance = negated(*solved);
      } else {
        // Unknown components: record conservatively in body order.
        dep.srcAccess = i;
        dep.dstAccess = j;
        dep.kind = kindOf(aWrites, bWrites);
        dep.distance = *solved;
      }
      if (i == j && dep.isDistanceVector() &&
          lexSign(dep.distance) == 0) {
        continue;  // an access does not depend on itself
      }
      deps.push_back(std::move(dep));
    }
  }
  return deps;
}

bool tilingIsLegal(const Kernel& kernel,
                   const std::vector<std::size_t>& levels) {
  for (const Dependence& dep : computeDependences(kernel)) {
    for (const std::size_t l : levels) {
      MEMX_EXPECTS(l < kernel.nest.depth(), "tile level out of range");
      if (l >= dep.distance.size()) continue;
      const DistanceComponent& c = dep.distance[l];
      if (!c.known() || *c.value < 0) return false;
    }
  }
  return true;
}

bool tilingIsLegal(const Kernel& kernel) {
  if (kernel.nest.depth() < 2) return false;
  return tilingIsLegal(kernel, {0, 1});
}

bool interchangeIsLegal(const Kernel& kernel, std::size_t a,
                        std::size_t b) {
  MEMX_EXPECTS(a < kernel.nest.depth() && b < kernel.nest.depth(),
               "interchange level out of range");
  for (Dependence dep : computeDependences(kernel)) {
    if (dep.distance.size() < kernel.nest.depth()) {
      dep.distance.resize(kernel.nest.depth());
    }
    std::swap(dep.distance[a], dep.distance[b]);
    if (!dep.lexNonNegative()) return false;
  }
  return true;
}

bool distributionIsLegal(const Kernel& kernel, std::size_t splitIndex) {
  MEMX_EXPECTS(splitIndex > 0 && splitIndex < kernel.body.size(),
               "split must leave both halves non-empty");
  for (const Dependence& dep : computeDependences(kernel)) {
    const bool crosses =
        (dep.srcAccess < splitIndex) != (dep.dstAccess < splitIndex);
    if (!crosses) continue;
    // A dependence from the second group back into the first would run
    // in reverse once all first-half iterations precede the second half.
    if (dep.srcAccess >= splitIndex) return false;
    // Unknown distances could hide exactly that reversed direction.
    if (!dep.isDistanceVector()) return false;
  }
  return true;
}

bool fusionIsLegal(const Kernel& first, const Kernel& second) {
  if (!sameIterationSpace(first, second)) return false;
  // Build the fused view so shared arrays line up; fuseKernels throws
  // on shape conflicts, which also makes fusion illegal.
  Kernel fused;
  try {
    fused = fuseKernels(first, second);
  } catch (const ContractViolation&) {
    return false;
  }
  const std::size_t split = first.body.size();
  const std::size_t depth = fused.nest.depth();

  for (std::size_t i = 0; i < split; ++i) {
    for (std::size_t j = split; j < fused.body.size(); ++j) {
      const ArrayAccess& a = fused.body[i];
      const ArrayAccess& b = fused.body[j];
      if (a.arrayIndex != b.arrayIndex) continue;
      if (a.type != AccessType::Write && b.type != AccessType::Write) {
        continue;
      }
      const MaybeDistance solved = solveDistance(a, b, depth);
      if (!solved) continue;
      Dependence probe;
      probe.distance = *solved;
      if (!probe.lexNonNegative()) return false;
    }
  }
  return true;
}

}  // namespace memx
