// The nine MPEG-decoder kernels of the Section-5 case study.
//
// The paper takes these from Thordarson's behavioral MPEG description,
// which is not publicly available; each kernel here is modeled as a loop
// nest with the access pattern its role implies (see DESIGN.md,
// "Substitutions"). What matters for the case study is that the kernels
// pull the exploration toward different (T, L, S, B) corners: VLD is
// pointer-chasing, Display/Store are long sequential streams, IDCT is
// transposed/strided, Fetch is motion-offset block copying, and the
// arithmetic kernels (Dequant, Plus, Compute) are multi-operand
// elementwise loops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Variable-length decoding: sequential bitstream scan plus data-dependent
/// (incompatible) code-table lookups.
[[nodiscard]] Kernel mpegVldKernel();

/// Coefficient dequantization over 8x8 blocks; the quantizer matrix is
/// reused by every block (high temporal locality on one small array).
[[nodiscard]] Kernel mpegDequantKernel();

/// Column pass of the 2-D IDCT: transposed (stride-8) reads.
[[nodiscard]] Kernel mpegIdctKernel();

/// Reconstruction add: out = clip(pred + resid), elementwise over a
/// macroblock row.
[[nodiscard]] Kernel mpegPlusKernel();

/// Frame read-out to the display: one long sequential read stream.
[[nodiscard]] Kernel mpegDisplayKernel();

/// Reconstructed-frame store: one long sequential write stream.
[[nodiscard]] Kernel mpegStoreKernel();

/// Prediction address generation: short loop over motion vectors.
[[nodiscard]] Kernel mpegAddrKernel();

/// Motion-compensated block fetch: 8x8 blocks read at a motion-vector
/// offset inside the reference frame (row-strided).
[[nodiscard]] Kernel mpegFetchKernel();

/// Half-pel interpolation: four-tap neighborhood average per pixel.
[[nodiscard]] Kernel mpegComputeKernel();

/// One kernel plus how often the decoder invokes it per frame.
struct WeightedKernel {
  Kernel kernel;
  std::uint64_t trips = 1;
};

/// All nine kernels with their per-frame trip counts, in the order of
/// the paper's Figure 10 (VLD, Dequant, IDCT, Plus, Display, Store,
/// Addr, Fetch, Compute).
[[nodiscard]] std::vector<WeightedKernel> mpegDecoderKernels();

}  // namespace memx
