#include "memx/kernels/extra_kernels.hpp"

#include "memx/util/assert.hpp"

namespace memx {

namespace {
AffineExpr V(std::size_t dim, std::int64_t c = 0) {
  return AffineExpr::var(dim).plusConstant(c);
}
}  // namespace

Kernel luKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 3, "lu needs n >= 3");
  Kernel k;
  k.name = "lu";
  k.arrays = {ArrayDecl{"a", {n, n}, elemBytes}};
  k.nest =
      LoopNest::rectangular({{1, n - 1}, {1, n - 1}, {1, n - 1}});
  // a[i][j] -= a[i][k] * a[k][j]   (loops: k, i, j)
  k.body = {
      makeAccess(0, {V(1), V(0)}),  // a[i][k]
      makeAccess(0, {V(0), V(2)}),  // a[k][j]
      makeAccess(0, {V(1), V(2)}),  // a[i][j] read
      makeAccess(0, {V(1), V(2)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel firKernel(std::int64_t n, std::int64_t taps,
                 std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 1 && taps >= 1, "fir needs positive sizes");
  Kernel k;
  k.name = "fir";
  k.arrays = {
      ArrayDecl{"in", {n + taps}, elemBytes},
      ArrayDecl{"coef", {taps}, elemBytes},
      ArrayDecl{"out", {n}, elemBytes},
  };
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, taps - 1}});
  // out[i] += coef[t] * in[i + t]
  k.body = {
      makeAccess(1, {V(1)}),                       // coef[t]
      makeAccess(0, {AffineExpr(0, {1, 1})}),      // in[i + t]
      makeAccess(2, {V(0)}, AccessType::Write),    // out[i]
  };
  k.validate();
  return k;
}

Kernel histogramKernel(std::int64_t n, std::int64_t bins) {
  MEMX_EXPECTS(n >= 1 && bins >= 1, "histogram needs positive sizes");
  Kernel k;
  k.name = "histogram";
  k.arrays = {
      ArrayDecl{"data", {n}, 1},
      ArrayDecl{"bins", {bins}, 4},
  };
  k.nest = LoopNest::rectangular({{0, n - 1}});
  ArrayAccess binRead;
  binRead.arrayIndex = 1;
  binRead.subscripts = {AffineExpr(0)};
  binRead.indirectSeed = 0xB1A5;
  ArrayAccess binWrite = binRead;
  binWrite.type = AccessType::Write;
  // The read and the write of one iteration must hit the same random
  // bin: same seed, same iteration hash.
  k.body = {
      makeAccess(0, {AffineExpr::var(0)}),  // data[i]
      binRead,
      binWrite,
  };
  k.validate();
  return k;
}

Kernel matVecKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 1, "matvec needs n >= 1");
  Kernel k;
  k.name = "matvec";
  k.arrays = {
      ArrayDecl{"m", {n, n}, elemBytes},
      ArrayDecl{"x", {n}, elemBytes},
      ArrayDecl{"y", {n}, elemBytes},
  };
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 1}});
  // y[i] += m[i][j] * x[j]
  k.body = {
      makeAccess(0, {V(0), V(1)}),
      makeAccess(1, {V(1)}),
      makeAccess(2, {V(0)}, AccessType::Write),
  };
  k.validate();
  return k;
}

}  // namespace memx
