#include "memx/kernels/benchmarks.hpp"

#include "memx/util/assert.hpp"

namespace memx {

namespace {

/// i + c in a 2-deep (or deeper) nest.
AffineExpr I(std::int64_t c = 0) {
  return AffineExpr::var(0).plusConstant(c);
}
/// j + c.
AffineExpr J(std::int64_t c = 0) {
  return AffineExpr::var(1).plusConstant(c);
}
/// k + c (third loop).
AffineExpr K(std::int64_t c = 0) {
  return AffineExpr::var(2).plusConstant(c);
}

ArrayDecl square(const std::string& name, std::int64_t n,
                 std::uint32_t elemBytes) {
  return ArrayDecl{name, {n, n}, elemBytes};
}

}  // namespace

Kernel compressKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 2, "compress needs n >= 2");
  Kernel k;
  k.name = "compress";
  k.arrays = {square("a", n, elemBytes)};
  k.nest = LoopNest::rectangular({{1, n - 1}, {1, n - 1}});
  // a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1]
  k.body = {
      makeAccess(0, {I(), J()}),            // read a[i][j]
      makeAccess(0, {I(-1), J()}),          // read a[i-1][j]
      makeAccess(0, {I(), J(-1)}),          // read a[i][j-1]
      makeAccess(0, {I(-1), J(-1)}),        // read a[i-1][j-1]
      makeAccess(0, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel matMulKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 2, "matmul needs n >= 2");
  Kernel k;
  k.name = "matmul";
  k.arrays = {square("a", n, elemBytes), square("b", n, elemBytes),
              square("c", n, elemBytes)};
  k.nest = LoopNest::rectangular({{1, n - 1}, {1, n - 1}, {1, n - 1}});
  // c[i][j] += a[i][k] * b[k][j]
  k.body = {
      makeAccess(0, {I(), K()}),   // read a[i][k]
      makeAccess(1, {K(), J()}),   // read b[k][j]
      makeAccess(2, {I(), J()}),   // read c[i][j]
      makeAccess(2, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel matrixAddKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 1, "matrix add needs n >= 1");
  Kernel k;
  k.name = "matadd";
  k.arrays = {square("a", n, elemBytes), square("b", n, elemBytes),
              square("c", n, elemBytes)};
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 1}});
  // c[i][j] = a[i][j] + b[i][j]
  k.body = {
      makeAccess(0, {I(), J()}),
      makeAccess(1, {I(), J()}),
      makeAccess(2, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel pdeKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 3, "pde needs n >= 3");
  Kernel k;
  k.name = "pde";
  k.arrays = {square("a", n, elemBytes), square("b", n, elemBytes)};
  k.nest = LoopNest::rectangular({{1, n - 2}, {1, n - 2}});
  // b[i][j] = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]) / 4
  k.body = {
      makeAccess(0, {I(-1), J()}),
      makeAccess(0, {I(+1), J()}),
      makeAccess(0, {I(), J(-1)}),
      makeAccess(0, {I(), J(+1)}),
      makeAccess(1, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel sorKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 3, "sor needs n >= 3");
  Kernel k;
  k.name = "sor";
  k.arrays = {square("a", n, elemBytes)};
  k.nest = LoopNest::rectangular({{1, n - 2}, {1, n - 2}});
  // a[i][j] = 0.2*(a[i][j] + a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1])
  k.body = {
      makeAccess(0, {I(), J()}),
      makeAccess(0, {I(-1), J()}),
      makeAccess(0, {I(+1), J()}),
      makeAccess(0, {I(), J(-1)}),
      makeAccess(0, {I(), J(+1)}),
      makeAccess(0, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel dequantKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 2, "dequant needs n >= 2");
  Kernel k;
  k.name = "dequant";
  k.arrays = {square("coef", n, elemBytes), square("qtab", n, elemBytes),
              square("out", n, elemBytes)};
  k.nest = LoopNest::rectangular({{1, n - 1}, {1, n - 1}});
  // out[i][j] = coef[i][j] * qtab[i][j]
  k.body = {
      makeAccess(0, {I(), J()}),
      makeAccess(1, {I(), J()}),
      makeAccess(2, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel transposeKernel(std::int64_t n, std::uint32_t elemBytes) {
  MEMX_EXPECTS(n >= 1, "transpose needs n >= 1");
  Kernel k;
  k.name = "transpose";
  k.arrays = {square("a", n, elemBytes), square("b", n, elemBytes)};
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 1}});
  // a[i][j] = b[j][i]
  k.body = {
      makeAccess(1, {J(), I()}),
      makeAccess(0, {I(), J()}, AccessType::Write),
  };
  k.validate();
  return k;
}

std::vector<Kernel> paperBenchmarks() {
  return {compressKernel(), matMulKernel(), pdeKernel(), sorKernel(),
          dequantKernel()};
}

}  // namespace memx
