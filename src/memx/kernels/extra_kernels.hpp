// Additional classic embedded/DSP kernels beyond the paper's five.
//
// These widen the workload space the library is exercised on: LU has a
// triangular-ish reuse pattern, FIR is the canonical DSP sliding window,
// histogram stresses data-dependent writes (the layout optimization's
// blind spot), and matrix-vector mixes streaming with a hot vector.
#pragma once

#include <cstdint>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Right-looking LU elimination step set over an n x n matrix
/// (rectangularized: every (k-independent) update runs over the full
/// square; the traversal, not the arithmetic, is what matters here).
///   a[i][j] -= a[i][k] * a[k][j]  for k, i, j in [1, n-1].
[[nodiscard]] Kernel luKernel(std::int64_t n = 16,
                              std::uint32_t elemBytes = 1);

/// FIR filter: out[i] = sum_t coef[t] * in[i + t], taps reused every
/// iteration (hot coefficient array), input sliding window.
[[nodiscard]] Kernel firKernel(std::int64_t n = 256, std::int64_t taps = 16,
                               std::uint32_t elemBytes = 1);

/// Histogram: bins[ data[i] ]++ — a data-dependent (incompatible)
/// read-modify-write that no static layout can de-conflict.
[[nodiscard]] Kernel histogramKernel(std::int64_t n = 1024,
                                     std::int64_t bins = 64);

/// Matrix-vector product y[i] += m[i][j] * x[j]: the matrix streams
/// once, the x vector is reused every row.
[[nodiscard]] Kernel matVecKernel(std::int64_t n = 64,
                                  std::uint32_t elemBytes = 1);

}  // namespace memx
