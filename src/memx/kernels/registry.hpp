// Name -> Kernel registry shared by the CLI and the serve front end.
//
// One table so "matmul" means the same workload to every entry point —
// the serve result store keys cached sweeps by registry name, which is
// only sound if that name denotes exactly one kernel everywhere.
#pragma once

#include <string>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Registered benchmark names, in presentation order.
[[nodiscard]] const std::vector<std::string>& kernelRegistryNames();

/// The registered kernel called `name`. Throws memx::ContractViolation
/// (listing the valid names) when `name` is not registered. Paths are
/// not resolved here; see kernelByNameOrPath.
[[nodiscard]] Kernel registeredKernel(const std::string& name);

/// CLI-style lookup: a path (contains '/' or ends in ".mx") is parsed
/// as a kernel file, anything else goes through registeredKernel.
/// Throws memx::ContractViolation when the file cannot be opened and
/// propagates parser errors.
[[nodiscard]] Kernel kernelByNameOrPath(const std::string& name);

}  // namespace memx
