// The paper's benchmark loop kernels (Sections 3-4).
//
// All five exploration benchmarks — Compress, Matrix Multiplication, PDE,
// SOR, Dequant — run a 31x31 iteration space exactly as the paper states.
//
// Element granularity: the paper addresses arrays in *elements* (its
// Section-4.1 walkthrough puts a[1][0] of `int a[32][32]` at address 32),
// so the default elemBytes is 1 — one address unit per element, giving
// multi-element cache lines at L = 4 as the paper's line-size study
// assumes. The factories accept elemBytes = 4 for the byte-addressed
// word-array view, which is what reproduces the paper's pathological
// *unoptimized* layouts (128-byte rows aliasing in 32..128-byte caches,
// Figures 5 and 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Example 1 / Section 3: in-place 2x2 stencil
///   a[i][j] -= a[i-1][j] + a[i][j-1] + 2*a[i-1][j-1],  i,j = 1..n-1.
/// Two reference classes of two references each => 4 minimum cache lines.
[[nodiscard]] Kernel compressKernel(std::int64_t n = 32,
                                    std::uint32_t elemBytes = 1);

/// Dense matrix multiply c[i][j] += a[i][k] * b[k][j], all loops 1..n-1
/// (31x31x31 for the default n = 32).
[[nodiscard]] Kernel matMulKernel(std::int64_t n = 32,
                                  std::uint32_t elemBytes = 1);

/// Example 2: c[i][j] = a[i][j] + b[i][j] over n x n. The paper's layout
/// walkthrough uses n = 6 with byte elements.
[[nodiscard]] Kernel matrixAddKernel(std::int64_t n = 6,
                                     std::uint32_t elemBytes = 1);

/// Jacobi-style PDE relaxation step (Wolf-Lam benchmark):
///   b[i][j] = (a[i-1][j] + a[i+1][j] + a[i][j-1] + a[i][j+1]) / 4.
[[nodiscard]] Kernel pdeKernel(std::int64_t n = 33,
                               std::uint32_t elemBytes = 1);

/// Successive over-relaxation, in place (Wolf-Lam benchmark):
///   a[i][j] = 0.2 * (a[i][j] + a[i-1][j] + a[i+1][j]
///                    + a[i][j-1] + a[i][j+1]).
[[nodiscard]] Kernel sorKernel(std::int64_t n = 33,
                               std::uint32_t elemBytes = 1);

/// MPEG-style dequantization b[i][j] = a[i][j] * q[i][j] on the paper's
/// 31x31 iteration space.
[[nodiscard]] Kernel dequantKernel(std::int64_t n = 32,
                                   std::uint32_t elemBytes = 1);

/// Example 3(a): a[i][j] = b[j][i] — the transpose kernel whose stride-n
/// accesses motivate tiling.
[[nodiscard]] Kernel transposeKernel(std::int64_t n = 32,
                                     std::uint32_t elemBytes = 4);

/// The five kernels of Figures 2, 6, 8 and 9, in paper order:
/// Compress, Mat. Multi., PDE, SOR, Dequant.
[[nodiscard]] std::vector<Kernel> paperBenchmarks();

}  // namespace memx
