#include "memx/kernels/mpeg_kernels.hpp"

namespace memx {

namespace {

AffineExpr V(std::size_t dim, std::int64_t c = 0) {
  return AffineExpr::var(dim).plusConstant(c);
}

ArrayAccess indirectRead(std::size_t arrayIndex, std::size_t rank,
                         std::uint64_t seed) {
  ArrayAccess acc;
  acc.arrayIndex = arrayIndex;
  acc.subscripts.assign(rank, AffineExpr(0));
  acc.type = AccessType::Read;
  acc.indirectSeed = seed;
  return acc;
}

}  // namespace

Kernel mpegVldKernel() {
  Kernel k;
  k.name = "VLD";
  k.arrays = {
      ArrayDecl{"bits", {1024}, 1},    // bitstream bytes
      ArrayDecl{"codetab", {256}, 4},  // Huffman code table
      ArrayDecl{"runlen", {1024}, 2},  // decoded (run, level) output
  };
  k.nest = LoopNest::rectangular({{0, 1023}});
  k.body = {
      makeAccess(0, {V(0)}),              // sequential bitstream read
      indirectRead(1, 1, 0xD0DEC0DEull),
      makeAccess(2, {V(0)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegDequantKernel() {
  Kernel k;
  k.name = "Dequant";
  // 24 blocks of 8x8 coefficients; the quantizer table is shared.
  k.arrays = {
      ArrayDecl{"coef", {24, 8, 8}, 2},
      ArrayDecl{"qtab", {8, 8}, 2},
  };
  k.nest = LoopNest::rectangular({{0, 23}, {0, 7}, {0, 7}});
  k.body = {
      makeAccess(0, {V(0), V(1), V(2)}),
      makeAccess(1, {V(1), V(2)}),
      makeAccess(0, {V(0), V(1), V(2)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegIdctKernel() {
  Kernel k;
  k.name = "IDCT";
  // Column pass: reads the block transposed (stride-8), writes row-major.
  k.arrays = {
      ArrayDecl{"blk", {24, 8, 8}, 2},
      ArrayDecl{"out", {24, 8, 8}, 2},
      ArrayDecl{"costab", {8, 8}, 2},
  };
  k.nest = LoopNest::rectangular({{0, 23}, {0, 7}, {0, 7}});
  k.body = {
      makeAccess(0, {V(0), V(2), V(1)}),  // transposed read
      makeAccess(2, {V(1), V(2)}),        // cosine table
      makeAccess(1, {V(0), V(1), V(2)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegPlusKernel() {
  Kernel k;
  k.name = "Plus";
  k.arrays = {
      ArrayDecl{"pred", {16, 64}, 1},
      ArrayDecl{"resid", {16, 64}, 2},
      ArrayDecl{"recon", {16, 64}, 1},
  };
  k.nest = LoopNest::rectangular({{0, 15}, {0, 63}});
  k.body = {
      makeAccess(0, {V(0), V(1)}),
      makeAccess(1, {V(0), V(1)}),
      makeAccess(2, {V(0), V(1)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegDisplayKernel() {
  Kernel k;
  k.name = "Display";
  k.arrays = {ArrayDecl{"frame", {4096}, 1},
              ArrayDecl{"screen", {4096}, 1}};
  k.nest = LoopNest::rectangular({{0, 4095}});
  k.body = {
      makeAccess(0, {V(0)}),
      makeAccess(1, {V(0)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegStoreKernel() {
  Kernel k;
  k.name = "Store";
  k.arrays = {ArrayDecl{"recon", {16, 64}, 1},
              ArrayDecl{"frame", {4096}, 1}};
  k.nest = LoopNest::rectangular({{0, 15}, {0, 63}});
  k.body = {
      makeAccess(0, {V(0), V(1)}),
      // frame[64*i + j]
      makeAccess(1,
                 {AffineExpr(0, {64, 1})},
                 AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegAddrKernel() {
  Kernel k;
  k.name = "Addr";
  k.arrays = {
      ArrayDecl{"mv", {96, 2}, 2},    // motion vectors (x, y)
      ArrayDecl{"addr", {96}, 4},     // computed fetch addresses
  };
  k.nest = LoopNest::rectangular({{0, 95}});
  k.body = {
      makeAccess(0, {V(0), AffineExpr(0)}),
      makeAccess(0, {V(0), AffineExpr(1)}),
      makeAccess(1, {V(0)}, AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegFetchKernel() {
  Kernel k;
  k.name = "Fetch";
  // 4x4 grid of 8x8 blocks fetched at a (+1, +1) motion offset from the
  // reference frame.
  k.arrays = {
      ArrayDecl{"refframe", {40, 40}, 1},
      ArrayDecl{"blk", {16, 8, 8}, 1},
  };
  k.nest =
      LoopNest::rectangular({{0, 3}, {0, 3}, {0, 7}, {0, 7}});
  k.body = {
      // refframe[8*bi + y + 1][8*bj + x + 1]
      makeAccess(0, {AffineExpr(1, {8, 0, 1, 0}),
                     AffineExpr(1, {0, 8, 0, 1})}),
      // blk[4*bi + bj][y][x]
      makeAccess(1, {AffineExpr(0, {4, 1, 0, 0}),
                     AffineExpr(0, {0, 0, 1, 0}),
                     AffineExpr(0, {0, 0, 0, 1})},
                 AccessType::Write),
  };
  k.validate();
  return k;
}

Kernel mpegComputeKernel() {
  Kernel k;
  k.name = "Compute";
  // Half-pel interpolation over a 32x32 region.
  k.arrays = {
      ArrayDecl{"src", {33, 33}, 1},
      ArrayDecl{"dst", {32, 32}, 1},
  };
  k.nest = LoopNest::rectangular({{0, 31}, {0, 31}});
  k.body = {
      makeAccess(0, {V(0), V(1)}),
      makeAccess(0, {V(0), V(1, 1)}),
      makeAccess(0, {V(0, 1), V(1)}),
      makeAccess(0, {V(0, 1), V(1, 1)}),
      makeAccess(1, {V(0), V(1)}, AccessType::Write),
  };
  k.validate();
  return k;
}

std::vector<WeightedKernel> mpegDecoderKernels() {
  // Trip counts per decoded frame: block-level kernels (Dequant, IDCT,
  // Plus, Store) run once per macroblock row group, prediction kernels
  // once per motion-compensated macroblock, the frame-level kernels once.
  return {
      {mpegVldKernel(), 1},     {mpegDequantKernel(), 6},
      {mpegIdctKernel(), 6},    {mpegPlusKernel(), 6},
      {mpegDisplayKernel(), 1}, {mpegStoreKernel(), 6},
      {mpegAddrKernel(), 4},    {mpegFetchKernel(), 4},
      {mpegComputeKernel(), 4},
  };
}

}  // namespace memx
