#include "memx/kernels/registry.hpp"

#include <fstream>

#include "memx/kernels/benchmarks.hpp"
#include "memx/kernels/extra_kernels.hpp"
#include "memx/loopir/kernel_parser.hpp"
#include "memx/util/assert.hpp"

namespace memx {

const std::vector<std::string>& kernelRegistryNames() {
  static const std::vector<std::string> names = {
      "compress",  "matmul", "matadd", "pde",    "sor",      "dequant",
      "transpose", "lu",     "fir",    "matvec", "histogram"};
  return names;
}

Kernel registeredKernel(const std::string& name) {
  if (name == "compress") return compressKernel();
  if (name == "matmul") return matMulKernel();
  if (name == "matadd") return matrixAddKernel(6, 1);
  if (name == "pde") return pdeKernel();
  if (name == "sor") return sorKernel();
  if (name == "dequant") return dequantKernel();
  if (name == "transpose") return transposeKernel();
  if (name == "lu") return luKernel();
  if (name == "fir") return firKernel();
  if (name == "matvec") return matVecKernel();
  if (name == "histogram") return histogramKernel();
  std::string valid;
  for (const std::string& n : kernelRegistryNames()) {
    if (!valid.empty()) valid += ' ';
    valid += n;
  }
  throw ContractViolation("unknown kernel '" + name + "'; known: " + valid);
}

Kernel kernelByNameOrPath(const std::string& name) {
  if (name.find('/') != std::string::npos ||
      (name.size() > 3 && name.substr(name.size() - 3) == ".mx")) {
    std::ifstream file(name);
    if (!file) throw ContractViolation("cannot open kernel file " + name);
    return parseKernel(file, name);
  }
  return registeredKernel(name);
}

}  // namespace memx
